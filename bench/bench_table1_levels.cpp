// Reproduces paper Table 1: ASAP level, ALAP level and Height of every
// 3DFT node (Eqs. 1-3) on the reconstructed Fig. 2 graph.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "graph/levels.hpp"
#include "util/table.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

int main() {
  bench::banner("Table 1 — ASAP level, ALAP level and Height (3DFT)",
                "paper values vs. values computed on the reconstructed graph");

  struct Row {
    const char* name;
    int asap, alap, height;
  };
  // The paper lists 22 rows (c12/c14 omitted there; DESIGN.md derives them).
  const Row paper_rows[] = {
      {"b3", 0, 0, 5},  {"b6", 0, 0, 5},  {"b1", 0, 1, 4},  {"b5", 0, 1, 4},
      {"a4", 0, 1, 4},  {"a2", 0, 1, 4},  {"a8", 1, 1, 4},  {"a7", 1, 1, 4},
      {"c9", 1, 2, 3},  {"c13", 1, 2, 3}, {"c11", 1, 2, 3}, {"c10", 1, 2, 3},
      {"a24", 1, 4, 1}, {"a16", 1, 4, 1}, {"a15", 2, 3, 2}, {"a18", 2, 3, 2},
      {"a20", 3, 3, 2}, {"a17", 3, 3, 2}, {"a19", 3, 4, 1}, {"a22", 3, 4, 1},
      {"a23", 4, 4, 1}, {"a21", 4, 4, 1},
  };

  const Dfg dfg = workloads::paper_3dft();
  const Levels lv = compute_levels(dfg);

  TextTable t({"node", "asap (paper/ours)", "alap (paper/ours)", "height (paper/ours)",
               "match"});
  bench::Gate gate("table1_levels");
  int matched_rows = 0;
  for (const Row& row : paper_rows) {
    const NodeId n = *dfg.find_node(row.name);
    const bool ok =
        lv.asap[n] == row.asap && lv.alap[n] == row.alap && lv.height[n] == row.height;
    if (ok) ++matched_rows;
    gate.check_eq(row.asap, lv.asap[n], std::string("asap(") + row.name + ")");
    gate.check_eq(row.alap, lv.alap[n], std::string("alap(") + row.name + ")");
    gate.check_eq(row.height, lv.height[n], std::string("height(") + row.name + ")");
    t.add(row.name, std::to_string(row.asap) + "/" + std::to_string(lv.asap[n]),
          std::to_string(row.alap) + "/" + std::to_string(lv.alap[n]),
          std::to_string(row.height) + "/" + std::to_string(lv.height[n]),
          ok ? "exact" : "DIFFERS");
  }
  std::fputs(t.to_string().c_str(), stdout);

  std::printf("\nNodes omitted from the paper's table (derived values):\n");
  for (const char* name : {"c12", "c14"}) {
    const NodeId n = *dfg.find_node(name);
    std::printf("  %-4s asap=%d alap=%d height=%d\n", name, lv.asap[n], lv.alap[n],
                lv.height[n]);
  }
  std::printf("\nResult: %d/22 published rows match%s\n", matched_rows,
              gate.failures() == 0 ? " — Table 1 reproduced exactly" : "");
  return gate.finish("Table 1 (ASAP/ALAP/Height, 22 rows x 3 attributes)");
}
