// Reproduces the paper's §5.2 worked example on the Fig. 4 graph:
//   * first-iteration priorities  f(p1)=26 f(p2)=24 f(p3)=88 f(p4)=84,
//   * pick {aa}, delete subpattern {a},
//   * second-iteration priorities f(p2)=24 f(p4)=84, pick {bb},
//   * with Pdef=1 every candidate fails the color-number condition and
//     the fabricated pattern {ab} appears.
//
// Every published value is a bench::Gate hard assertion — priorities per
// candidate per iteration, both picks, the subpattern deletion count, and
// the Pdef=1 fabrication — so the §5.2 walkthrough cannot silently drift.
#include <cstdio>

#include "bench_common.hpp"
#include "core/select.hpp"
#include "util/table.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

namespace {

double priority_of(const SelectionStep& step, const Dfg& dfg, const char* pattern) {
  for (const auto& cand : step.candidates)
    if (cand.pattern.to_string(dfg) == pattern) return cand.priority;
  return -1;
}

}  // namespace

int main() {
  bench::banner("Fig. 4 / §5.2 — pattern selection walkthrough on the small example",
                "priority values of Eq. 8 with ε=0.5, α=20, C=2");

  const Dfg dfg = workloads::small_example();
  SelectOptions options;
  options.pattern_count = 2;
  options.capacity = 2;
  options.span_limit = std::nullopt;
  options.record_details = true;

  const SelectionResult result = select_patterns(dfg, options);

  const struct {
    int iteration;
    const char* pattern;
    double paper;
  } expected[] = {
      {0, "a", 26},  {0, "b", 24},  {0, "aa", 88}, {0, "bb", 84},
      {1, "b", 24},  {1, "bb", 84},
  };

  TextTable t({"iteration", "candidate", "f paper", "f ours", "match"});
  bench::Gate gate("fig4_selection_walkthrough");
  for (const auto& e : expected) {
    const double ours = priority_of(result.steps[e.iteration], dfg, e.pattern);
    // Eq. 8 on this example is exact integer arithmetic in doubles; the
    // paper cells are pinned with no tolerance.
    gate.check(ours == e.paper, std::string("f(") + e.pattern + ") iteration " +
                                    std::to_string(e.iteration + 1) + ": paper=" +
                                    std::to_string(e.paper) + " measured=" +
                                    std::to_string(ours));
    t.add(e.iteration + 1, e.pattern, e.paper, ours, ours == e.paper ? "exact" : "DIFFERS");
  }
  std::fputs(t.to_string().c_str(), stdout);

  const std::string pick1 = result.steps[0].chosen.to_string(dfg);
  const std::string pick2 = result.steps[1].chosen.to_string(dfg);
  gate.check(pick1 == "aa", "1st pick: paper {aa}, measured {" + pick1 + "}");
  gate.check(pick2 == "bb", "2nd pick: paper {bb}, measured {" + pick2 + "}");
  gate.check_eq(2, static_cast<long long>(result.steps[0].subpatterns_deleted),
                "subpatterns deleted after 1st pick (the winner itself plus {a})");
  std::printf("\nPicks: 1st=%s (paper {aa}), 2nd=%s (paper {bb})\n", pick1.c_str(),
              pick2.c_str());
  std::printf("Subpatterns deleted after 1st pick: %zu (the winner itself plus {a})\n",
              result.steps[0].subpatterns_deleted);

  // The Pdef=1 fallback.
  options.pattern_count = 1;
  const SelectionResult fallback = select_patterns(dfg, options);
  const bool fabricated =
      fallback.steps.size() == 1 && fallback.steps[0].fabricated &&
      fallback.steps[0].chosen.to_string(dfg) == "ab";
  gate.check(fabricated,
             "Pdef=1: all candidates rejected by Ineq. 9, fabricated pattern {ab}");
  std::printf("\nPdef=1: %s (paper: all candidates rejected by Ineq. 9, fabricate {ab})\n",
              fabricated ? "fabricated {ab} — exact" : "UNEXPECTED RESULT");

  return gate.finish("Fig. 4 / §5.2 walkthrough (6 priorities + picks + fabrication)");
}
