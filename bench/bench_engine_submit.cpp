// Asynchronous submission vs. the per-job blocking loop, on the demo
// corpus — what the admission queue (ISSUE 5) buys a stream of small
// independent submissions:
//
//   run() loop    one blocking run() per job: every job pays its own
//                 dispatch (8 jobs -> 8 dispatches), the status quo for a
//                 caller without batches.
//   submit stream submit() per job on a coalescing engine (hold the
//                 queue, flush at 4 jobs): the same stream shares
//                 dispatches — dedup and root-sharding work *across* the
//                 callers' jobs again.
//
// Hard gates: the coalesced stream executes strictly fewer dispatches
// than jobs (with at least one genuinely shared dispatch), its results
// are byte-identical to both the run() loop's and a plain run_batch() —
// the determinism contract that makes coalescing safe to apply to
// anyone's traffic — and per-ticket attribution sums reproduce the
// engine's analysis counters. The per-job latency delta is reported but
// not gated (it is machine noise on a loaded CI box; the dispatch-count
// reduction is the structural claim).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "io/result_io.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workloads/corpus.hpp"

using namespace mpsched;

namespace {

std::string fingerprint(const std::vector<engine::JobResult>& results) {
  std::string out;
  for (const engine::JobResult& r : results) out += result_to_json(r).dump(-1) + "\n";
  return out;
}

}  // namespace

int main() {
  bench::banner("Engine submit stream — per-job run() loop vs coalesced submit()",
                "8-job demo corpus submitted as a stream of single jobs");

  std::vector<engine::Job> jobs;
  for (const std::string& spec : workloads::demo_corpus_specs())
    jobs.push_back(engine::Job::from_workload(spec));

  bench::Gate gate("engine_submit");

  // Reference: one plain batched execution.
  engine::Engine reference;
  const engine::BatchResult batched = reference.run_batch(jobs);
  const std::string expected = fingerprint(batched.jobs);

  // ---- A: blocking run() per job — one dispatch each --------------------
  std::vector<engine::JobResult> loop_results;
  double loop_ms = 0.0;
  engine::EngineStats loop_stats;
  {
    engine::Engine eng;
    Timer t;
    for (const engine::Job& job : jobs) loop_results.push_back(eng.run(job));
    loop_ms = t.millis();
    loop_stats = eng.stats();
  }

  // ---- B: submit() stream on a coalescing engine ------------------------
  // Hold the queue (no flush-on-idle, generous delay) and flush whenever
  // 4 jobs are pending: the stream of 8 single submits shares dispatches
  // instead of paying 8.
  std::vector<engine::JobResult> stream_results;
  double stream_ms = 0.0;
  engine::EngineStats stream_stats;
  {
    engine::EngineOptions options;
    options.coalesce.flush_on_idle = false;
    options.coalesce.max_delay_ms = 5000;
    options.coalesce.max_jobs = 4;
    engine::Engine eng(options);
    Timer t;
    std::vector<engine::Ticket> tickets;
    for (const engine::Job& job : jobs) tickets.push_back(eng.submit(job));
    for (engine::Ticket& ticket : tickets) stream_results.push_back(ticket.result());
    stream_ms = t.millis();
    stream_stats = eng.stats();
  }

  TextTable table({"execution", "wall ms", "ms/job", "dispatches", "coalesced"});
  const auto row = [&](const char* name, double ms, const engine::EngineStats& s) {
    char wall[32], per[32];
    std::snprintf(wall, sizeof wall, "%.1f", ms);
    std::snprintf(per, sizeof per, "%.2f", ms / static_cast<double>(jobs.size()));
    table.add(name, wall, per, std::to_string(s.batches),
              std::to_string(s.coalesced_dispatches));
  };
  row("run() loop", loop_ms, loop_stats);
  row("submit() stream", stream_ms, stream_stats);
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("per-job latency delta: %+.1f%% (reported, not gated)\n\n",
              loop_ms > 0 ? 100.0 * (stream_ms - loop_ms) / loop_ms : 0.0);

  // ---- gates ------------------------------------------------------------
  gate.check(fingerprint(loop_results) == expected,
             "run() loop results byte-match run_batch()");
  gate.check(fingerprint(stream_results) == expected,
             "coalesced submit() stream results byte-match run_batch()");
  gate.check_eq(static_cast<long long>(jobs.size()),
                static_cast<long long>(loop_stats.batches),
                "run() loop pays one dispatch per job");
  gate.check(stream_stats.batches < jobs.size(),
             "coalesced stream dispatches (" + std::to_string(stream_stats.batches) +
                 ") < job count (" + std::to_string(jobs.size()) + ")");
  gate.check(stream_stats.coalesced_dispatches >= 1,
             "at least one dispatch carried more than one job");
  gate.check_eq(static_cast<long long>(jobs.size()),
                static_cast<long long>(stream_stats.jobs_submitted),
                "every stream job went through the admission queue");

  // Attribution: per-ticket analysis sources must sum to the engine's own
  // counters — the invariant the service layer relies on to report
  // per-request work out of shared dispatches.
  std::size_t computed = 0, reused = 0;
  for (const engine::JobResult& r : stream_results) {
    if (r.analysis_source == engine::AnalysisSource::Computed) ++computed;
    else if (r.analysis_source == engine::AnalysisSource::Reused) ++reused;
  }
  gate.check_eq(static_cast<long long>(stream_stats.analyses_computed),
                static_cast<long long>(computed),
                "per-ticket 'computed' attribution sums to the engine counter");
  gate.check_eq(static_cast<long long>(stream_stats.analyses_reused),
                static_cast<long long>(reused),
                "per-ticket 'reused' attribution sums to the engine counter");

  // ---- C: adaptive hold window on synthetic traffic ----------------------
  // The adaptive-delay policy derives the hold from the observed arrival
  // rate: a burst (near-zero gaps) should coalesce hard, a sparse stream
  // (gaps >> window/8) should dispatch every job alone with ~zero added
  // latency. A raw SubmissionQueue with a trivial dispatch function keeps
  // the measurement about queue behavior, not engine execution time.
  const auto echo_dispatch = [](std::vector<engine::Job> stream_jobs) {
    std::vector<engine::JobResult> results;
    for (const engine::Job& job : stream_jobs) {
      engine::JobResult r;
      r.job = job.resolved_name();
      r.success = true;
      results.push_back(std::move(r));
    }
    return results;
  };
  engine::CoalescePolicy adaptive;
  adaptive.flush_on_idle = false;
  adaptive.max_delay_ms = 120;
  adaptive.adaptive_delay = true;

  {
    engine::SubmissionQueue queue(echo_dispatch, adaptive);
    std::vector<engine::Ticket> tickets;
    for (int i = 0; i < 16; ++i)
      tickets.push_back(queue.submit(engine::Job::from_workload("small_example")));
    for (engine::Ticket& t : tickets) t.wait();
    const engine::SubmissionStats s = queue.stats();
    std::printf("\nadaptive hold, bursty stream: 16 back-to-back submits -> %llu "
                "dispatches (%llu coalesced)\n",
                static_cast<unsigned long long>(s.dispatches),
                static_cast<unsigned long long>(s.coalesced_dispatches));
    gate.info("adaptive bursty dispatches", static_cast<double>(s.dispatches));
    gate.check(s.dispatches < 16,
               "adaptive hold coalesces a bursty stream (dispatches < jobs)");
    gate.check(s.coalesced_dispatches >= 1,
               "adaptive bursty stream shared at least one dispatch");
  }

  {
    engine::SubmissionQueue queue(echo_dispatch, adaptive);
    double total_wait_ms = 0.0;
    const int sparse_jobs = 8;
    for (int i = 0; i < sparse_jobs; ++i) {
      if (i > 0) std::this_thread::sleep_for(std::chrono::milliseconds(40));
      Timer t;
      engine::Ticket ticket =
          queue.submit(engine::Job::from_workload("small_example"));
      ticket.wait();
      total_wait_ms += t.millis();
    }
    const engine::SubmissionStats s = queue.stats();
    const double mean_wait_ms = total_wait_ms / sparse_jobs;
    std::printf("adaptive hold, sparse stream: %d submits at 40 ms gaps -> %llu "
                "dispatches, %.2f ms mean submit-to-result\n",
                sparse_jobs, static_cast<unsigned long long>(s.dispatches),
                mean_wait_ms);
    gate.info("adaptive sparse mean wait ms", mean_wait_ms);
    gate.check_eq(static_cast<long long>(sparse_jobs),
                  static_cast<long long>(s.dispatches),
                  "sparse stream under adaptive hold dispatches every job alone");
    gate.check(mean_wait_ms < adaptive.max_delay_ms / 2.0,
               "sparse stream pays no hold-window latency tax (mean wait < half "
               "the ceiling)");
  }

  // ---- D: adaptive engine end-to-end — determinism stands ----------------
  {
    engine::EngineOptions options;
    options.coalesce = adaptive;
    engine::Engine eng(options);
    std::vector<engine::Ticket> tickets;
    for (const engine::Job& job : jobs) tickets.push_back(eng.submit(job));
    std::vector<engine::JobResult> adaptive_results;
    for (engine::Ticket& ticket : tickets) adaptive_results.push_back(ticket.result());
    const engine::EngineStats s = eng.stats();
    gate.check(fingerprint(adaptive_results) == expected,
               "adaptive-delay engine stream results byte-match run_batch()");
    gate.check(s.batches < jobs.size(),
               "adaptive-delay engine coalesced the burst (dispatches < jobs)");
    gate.info("adaptive engine dispatches", static_cast<double>(s.batches));
  }

  return gate.finish("engine submit stream coalescing");
}
