// Reproduces paper Table 6: node frequencies h(p̄, n) of the Fig. 4
// example — the raw material of the selection priority (Eq. 8).
#include <cstdio>

#include "bench_common.hpp"
#include "antichain/enumerate.hpp"
#include "util/table.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

int main() {
  bench::banner("Table 6 — node frequencies h(p,n) of the Fig. 4 example",
                "h(p,n) = number of antichains of pattern p containing node n");

  const Dfg dfg = workloads::small_example();
  EnumerateOptions options;
  options.max_size = 2;
  const AntichainAnalysis analysis = enumerate_antichains(dfg, options);

  const char* node_names[] = {"a1", "a2", "a3", "b4", "b5"};
  const struct {
    const char* pattern;
    std::uint64_t freq[5];
  } paper[] = {
      {"a", {1, 1, 1, 0, 0}},
      {"b", {0, 0, 0, 1, 1}},
      {"aa", {1, 1, 2, 0, 0}},
      {"bb", {0, 0, 0, 1, 1}},
  };

  TextTable t({"pattern", "a1", "a2", "a3", "b4", "b5", "match"});
  bench::Gate gate("table6_node_frequencies");
  for (const auto& row : paper) {
    const PatternAntichains* pa = nullptr;
    for (const auto& candidate : analysis.per_pattern)
      if (candidate.pattern.to_string(dfg) == row.pattern) pa = &candidate;
    gate.check(pa != nullptr, std::string("pattern '") + row.pattern + "' was enumerated");
    std::vector<std::string> cells{row.pattern};
    bool ok = pa != nullptr;
    for (int i = 0; i < 5; ++i) {
      const std::uint64_t measured =
          pa == nullptr ? 0 : pa->node_frequency[*dfg.find_node(node_names[i])];
      ok = ok && measured == row.freq[i];
      gate.check_eq(static_cast<long long>(row.freq[i]), static_cast<long long>(measured),
                    std::string("h(") + row.pattern + ", " + node_names[i] + ")");
      cells.push_back(std::to_string(row.freq[i]) + "/" + std::to_string(measured));
    }
    cells.push_back(ok ? "exact" : "DIFFERS");
    t.add_row(std::move(cells));
  }
  std::printf("cells are paper/ours\n\n%s", t.to_string().c_str());
  std::printf("\nResult: %s\n", gate.failures() == 0 ? "Table 6 reproduced exactly"
                                                     : "MISMATCH — see rows above");
  return gate.finish("Table 6 (4 patterns x 5 node frequencies)");
}
