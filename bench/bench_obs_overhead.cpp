// Observability overhead — the cost of the src/obs layer on the same
// 8-job demo corpus bench_engine_batch runs.
//
// Three configurations of one cold-cache engine dispatch:
//   metrics off   runtime kill switch (set_metrics_enabled(false)): every
//                 instrument collapses to one relaxed load + branch
//   metrics on    the shipping default: counters/gauges/histograms live
//   + tracing     metrics plus span capture into the ring buffer
//
// Gate: metrics-enabled wall time stays within 5% of metrics-disabled
// wall time (the acceptance criterion for keeping the layer compiled in
// by default). Passes are interleaved and each configuration takes the
// best of N, so one noisy scheduling on a loaded single-core CI runner
// measures neither side.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"
#include "workloads/corpus.hpp"

using namespace mpsched;

namespace {

/// One full cold dispatch: fresh engine (shared pool, empty cache) so
/// every pass pays the same enumeration work.
double cold_dispatch_ms(const std::vector<engine::Job>& jobs) {
  engine::Engine eng;
  return eng.run_batch(jobs).wall_ms;
}

}  // namespace

int main() {
  bench::banner("Observability overhead — 8-job demo corpus",
                "metrics off vs. on vs. on+tracing, cold engine dispatch each");

  std::vector<engine::Job> jobs;
  for (const std::string& spec : workloads::demo_corpus_specs())
    jobs.push_back(engine::Job::from_workload(spec));

  bench::Gate gate("obs_overhead");

  // Warm-up: pool spin-up and page faults hit no contestant.
  cold_dispatch_ms(jobs);

  constexpr int kPasses = 5;
  double off_ms = 0.0, on_ms = 0.0, traced_ms = 0.0;
  for (int pass = 0; pass < kPasses; ++pass) {
    obs::set_metrics_enabled(false);
    const double off = cold_dispatch_ms(jobs);
    obs::set_metrics_enabled(true);
    const double on = cold_dispatch_ms(jobs);
    obs::set_tracing_enabled(true);
    const double traced = cold_dispatch_ms(jobs);
    obs::set_tracing_enabled(false);
    off_ms = pass == 0 ? off : std::min(off_ms, off);
    on_ms = pass == 0 ? on : std::min(on_ms, on);
    traced_ms = pass == 0 ? traced : std::min(traced_ms, traced);
  }
  obs::set_metrics_enabled(true);
  obs::clear_trace();

  TextTable table({"configuration", "wall ms", "vs. metrics off"});
  const auto row = [&](const char* name, double ms) {
    char wall[32], delta[32];
    std::snprintf(wall, sizeof wall, "%.2f", ms);
    std::snprintf(delta, sizeof delta, "%+.1f%%",
                  off_ms > 0 ? 100.0 * (ms - off_ms) / off_ms : 0.0);
    table.add(name, wall, delta);
  };
  row("metrics off", off_ms);
  row("metrics on", on_ms);
  row("metrics + tracing", traced_ms);
  std::fputs(table.to_string().c_str(), stdout);

  gate.info("metrics off ms", off_ms);
  gate.info("metrics on ms", on_ms);
  gate.info("metrics+tracing ms", traced_ms);
  gate.check(on_ms <= off_ms * 1.05,
             "metrics-enabled overhead is at most 5% of the dark run");

  return gate.finish("observability overhead");
}
