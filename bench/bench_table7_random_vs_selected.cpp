// Reproduces paper Table 7 — the headline experiment: schedule length with
// randomly generated patterns (average of 10 draws) vs. patterns chosen by
// the selection algorithm, for Pdef = 1..5, on the 3DFT and 5DFT.
//
// Caveats recorded in EXPERIMENTS.md:
//  * 3DFT uses the exact reconstruction; with the span-1 selection default
//    the Selected column reproduces the paper exactly (8/7/7/7/6).
//  * The paper never specifies its 5DFT graph; ours is the Winograd
//    5-point DFT (44 nodes), so that column is shape-comparable only.
//  * Random columns depend on the authors' RNG; ours is seeded xoshiro
//    with color-coverage rejection (the paper's finite Pdef=1 averages
//    imply they also enforced coverage).
//
// Every cell is a bench::Gate hard assertion: the published 3DFT Selected
// cells are pinned to the paper, the reconstruction-dependent cells (5DFT
// Selected, both Random columns) are pinned to their stable reproduced
// values — the draws are seeded, so the 10-draw cycle totals are exact
// integers — and the paper's shape claims (Selected <= Random, monotone
// non-increasing in Pdef) are asserted per row.
#include <cstdio>

#include "bench_common.hpp"
#include "core/mp_schedule.hpp"
#include "core/select.hpp"
#include "pattern/random.hpp"
#include "util/table.hpp"
#include "workloads/dft.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

namespace {

/// Total cycles over `trials` seeded draws (the exact integer underlying
/// the reported average, so the gate can pin it without a tolerance).
long long random_total(const Dfg& dfg, std::size_t pdef, int trials, std::uint64_t seed) {
  Rng rng(seed);
  long long total = 0;
  for (int t = 0; t < trials; ++t) {
    RandomPatternOptions rpo;
    rpo.capacity = 5;
    rpo.count = pdef;
    const PatternSet set = random_pattern_set(dfg, rng, rpo);
    const MpScheduleResult r = multi_pattern_schedule(dfg, set);
    if (!r.success) {
      std::printf("random scheduling failed: %s\n", r.error.c_str());
      std::exit(1);
    }
    total += static_cast<long long>(r.cycles);
  }
  return total;
}

std::size_t selected_cycles(const Dfg& dfg, std::size_t pdef, std::string* patterns_out) {
  SelectOptions so;
  so.pattern_count = pdef;
  so.capacity = 5;  // span_limit uses the library default (1)
  const SelectionResult sel = select_patterns(dfg, so);
  const MpScheduleResult r = multi_pattern_schedule(dfg, sel.patterns);
  if (!r.success) {
    std::printf("selected scheduling failed: %s\n", r.error.c_str());
    std::exit(1);
  }
  *patterns_out = sel.patterns.to_string(dfg);
  return r.cycles;
}

}  // namespace

int main() {
  bench::banner("Table 7 — random vs. selected patterns (3DFT and 5DFT)",
                "clock cycles; Random = mean of 10 seeded draws, ε=0.5, α=20");

  const double paper_random_3dft[] = {12.4, 10.5, 8.7, 7.9, 6.5};
  const std::size_t paper_selected_3dft[] = {8, 7, 7, 7, 6};
  const double paper_random_5dft[] = {23.4, 22, 20.4, 15.8, 15.8};
  const std::size_t paper_selected_5dft[] = {19, 16, 16, 15, 15};
  // Reproduction-pinned cells (stable: seeded draws, deterministic
  // selection). Random cells are 10-draw cycle totals (mean × 10).
  const long long repro_random_total_3dft[] = {112, 98, 85, 70, 68};
  const long long repro_random_total_5dft[] = {179, 145, 117, 104, 106};
  const std::size_t repro_selected_5dft[] = {14, 10, 10, 10, 10};

  const Dfg dft3 = workloads::paper_3dft();
  const Dfg dft5 = workloads::winograd_dft5();

  TextTable t({"Pdef", "3DFT rnd (paper/ours)", "3DFT sel (paper/ours)", "match",
               "5DFT rnd (paper/ours)", "5DFT sel (paper/ours)"});
  bench::Gate gate("table7_random_vs_selected");
  int exact_selected_3dft = 0;
  std::size_t prev3 = SIZE_MAX, prev5 = SIZE_MAX;

  for (std::size_t pdef = 1; pdef <= 5; ++pdef) {
    const std::size_t i = pdef - 1;
    const long long rnd3_total = random_total(dft3, pdef, 10, 1000 + pdef);
    const long long rnd5_total = random_total(dft5, pdef, 10, 2000 + pdef);
    const double rnd3 = static_cast<double>(rnd3_total) / 10.0;
    const double rnd5 = static_cast<double>(rnd5_total) / 10.0;
    std::string sel3_patterns, sel5_patterns;
    const std::size_t sel3 = selected_cycles(dft3, pdef, &sel3_patterns);
    const std::size_t sel5 = selected_cycles(dft5, pdef, &sel5_patterns);

    // Published cells: pinned to the paper. Reconstruction cells: pinned
    // to their reproduced values so any drift in the RNG, the coverage
    // rejection, selection or the scheduler trips the gate.
    const std::string row = "[Pdef=" + std::to_string(pdef) + "]";
    gate.check_eq(static_cast<long long>(paper_selected_3dft[i]),
                  static_cast<long long>(sel3), "3DFT selected " + row);
    gate.check_eq(static_cast<long long>(repro_selected_5dft[i]),
                  static_cast<long long>(sel5), "5DFT selected " + row);
    gate.check_eq(repro_random_total_3dft[i], rnd3_total, "3DFT random 10-draw total " + row);
    gate.check_eq(repro_random_total_5dft[i], rnd5_total, "5DFT random 10-draw total " + row);

    // The paper's shape claims, per row.
    gate.check(static_cast<double>(sel3) <= rnd3, "3DFT selected <= random " + row);
    gate.check(static_cast<double>(sel5) <= rnd5, "5DFT selected <= random " + row);
    gate.check(sel3 <= prev3, "3DFT selected monotone non-increasing " + row);
    gate.check(sel5 <= prev5, "5DFT selected monotone non-increasing " + row);
    if (sel3 == paper_selected_3dft[i]) ++exact_selected_3dft;
    prev3 = sel3;
    prev5 = sel5;

    char rnd3_cell[48], rnd5_cell[48];
    std::snprintf(rnd3_cell, sizeof rnd3_cell, "%.1f/%.1f", paper_random_3dft[i], rnd3);
    std::snprintf(rnd5_cell, sizeof rnd5_cell, "%.1f/%.1f", paper_random_5dft[i], rnd5);
    t.add(pdef, rnd3_cell,
          std::to_string(paper_selected_3dft[i]) + "/" + std::to_string(sel3),
          bench::match(static_cast<long long>(paper_selected_3dft[i]),
                       static_cast<long long>(sel3)),
          rnd5_cell,
          std::to_string(paper_selected_5dft[i]) + "/" + std::to_string(sel5));
  }
  std::fputs(t.to_string().c_str(), stdout);

  std::printf("\n3DFT Selected column: %d/5 cells exact%s\n", exact_selected_3dft,
              exact_selected_3dft == 5 ? " — reproduced exactly" : "");
  std::printf("Note: the 5DFT columns are shape-comparable only — the paper never "
              "specifies its 5DFT graph (ours: Winograd, 44 nodes).\n");
  return gate.finish("Table 7 (5 Pdef rows x {selected, random totals, shape})");
}
