// Reproduces paper Table 7 — the headline experiment: schedule length with
// randomly generated patterns (average of 10 draws) vs. patterns chosen by
// the selection algorithm, for Pdef = 1..5, on the 3DFT and 5DFT.
//
// Caveats recorded in EXPERIMENTS.md:
//  * 3DFT uses the exact reconstruction; with the span-1 selection default
//    the Selected column reproduces the paper exactly (8/7/7/7/6).
//  * The paper never specifies its 5DFT graph; ours is the Winograd
//    5-point DFT (44 nodes), so that column is shape-comparable only.
//  * Random columns depend on the authors' RNG; ours is seeded xoshiro
//    with color-coverage rejection (the paper's finite Pdef=1 averages
//    imply they also enforced coverage).
#include <cstdio>

#include "bench_common.hpp"
#include "core/mp_schedule.hpp"
#include "core/select.hpp"
#include "pattern/random.hpp"
#include "util/table.hpp"
#include "workloads/dft.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

namespace {

double random_average(const Dfg& dfg, std::size_t pdef, int trials, std::uint64_t seed) {
  Rng rng(seed);
  double total = 0;
  for (int t = 0; t < trials; ++t) {
    RandomPatternOptions rpo;
    rpo.capacity = 5;
    rpo.count = pdef;
    const PatternSet set = random_pattern_set(dfg, rng, rpo);
    const MpScheduleResult r = multi_pattern_schedule(dfg, set);
    if (!r.success) {
      std::printf("random scheduling failed: %s\n", r.error.c_str());
      std::exit(1);
    }
    total += static_cast<double>(r.cycles);
  }
  return total / trials;
}

std::size_t selected_cycles(const Dfg& dfg, std::size_t pdef, std::string* patterns_out) {
  SelectOptions so;
  so.pattern_count = pdef;
  so.capacity = 5;  // span_limit uses the library default (1)
  const SelectionResult sel = select_patterns(dfg, so);
  const MpScheduleResult r = multi_pattern_schedule(dfg, sel.patterns);
  if (!r.success) {
    std::printf("selected scheduling failed: %s\n", r.error.c_str());
    std::exit(1);
  }
  *patterns_out = sel.patterns.to_string(dfg);
  return r.cycles;
}

}  // namespace

int main() {
  bench::banner("Table 7 — random vs. selected patterns (3DFT and 5DFT)",
                "clock cycles; Random = mean of 10 seeded draws, ε=0.5, α=20");

  const double paper_random_3dft[] = {12.4, 10.5, 8.7, 7.9, 6.5};
  const std::size_t paper_selected_3dft[] = {8, 7, 7, 7, 6};
  const double paper_random_5dft[] = {23.4, 22, 20.4, 15.8, 15.8};
  const std::size_t paper_selected_5dft[] = {19, 16, 16, 15, 15};

  const Dfg dft3 = workloads::paper_3dft();
  const Dfg dft5 = workloads::winograd_dft5();

  TextTable t({"Pdef", "3DFT rnd (paper/ours)", "3DFT sel (paper/ours)", "match",
               "5DFT rnd (paper/ours)", "5DFT sel (paper/ours)"});
  int exact_selected_3dft = 0;
  bool monotone_ok = true;
  std::size_t prev3 = SIZE_MAX, prev5 = SIZE_MAX;

  for (std::size_t pdef = 1; pdef <= 5; ++pdef) {
    const double rnd3 = random_average(dft3, pdef, 10, 1000 + pdef);
    const double rnd5 = random_average(dft5, pdef, 10, 2000 + pdef);
    std::string sel3_patterns, sel5_patterns;
    const std::size_t sel3 = selected_cycles(dft3, pdef, &sel3_patterns);
    const std::size_t sel5 = selected_cycles(dft5, pdef, &sel5_patterns);

    if (sel3 == paper_selected_3dft[pdef - 1]) ++exact_selected_3dft;
    monotone_ok = monotone_ok && sel3 <= prev3 && sel5 <= prev5 &&
                  static_cast<double>(sel3) <= rnd3 && static_cast<double>(sel5) <= rnd5;
    prev3 = sel3;
    prev5 = sel5;

    char rnd3_cell[48], rnd5_cell[48];
    std::snprintf(rnd3_cell, sizeof rnd3_cell, "%.1f/%.1f", paper_random_3dft[pdef - 1], rnd3);
    std::snprintf(rnd5_cell, sizeof rnd5_cell, "%.1f/%.1f", paper_random_5dft[pdef - 1], rnd5);
    t.add(pdef, rnd3_cell,
          std::to_string(paper_selected_3dft[pdef - 1]) + "/" + std::to_string(sel3),
          bench::match(static_cast<long long>(paper_selected_3dft[pdef - 1]),
                       static_cast<long long>(sel3)),
          rnd5_cell,
          std::to_string(paper_selected_5dft[pdef - 1]) + "/" + std::to_string(sel5));
  }
  std::fputs(t.to_string().c_str(), stdout);

  std::printf("\n3DFT Selected column: %d/5 cells exact%s\n", exact_selected_3dft,
              exact_selected_3dft == 5 ? " — reproduced exactly" : "");
  std::printf("Shape checks (Selected <= Random, monotone non-increasing in Pdef): %s\n",
              monotone_ok ? "hold for both workloads" : "VIOLATED");
  std::printf("Note: the 5DFT columns are shape-comparable only — the paper never "
              "specifies its 5DFT graph (ours: Winograd, 44 nodes).\n");
  return monotone_ok && exact_selected_3dft == 5 ? 0 : 1;
}
