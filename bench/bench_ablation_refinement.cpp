// Ablation E — closing the loop on selection quality (the paper's §7
// future work): greedy selection (Eq. 8) vs schedule-driven local-search
// refinement vs the exhaustive oracle (best achievable pattern set).
#include <cstdio>

#include "bench_common.hpp"
#include "core/exhaustive.hpp"
#include "core/refine.hpp"
#include "core/select.hpp"
#include "util/table.hpp"
#include "workloads/dft.hpp"
#include "workloads/kernels.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

int main() {
  bench::banner("Ablation E — greedy selection vs refinement vs exhaustive oracle",
                "cycles; oracle = best over ALL covering pattern sets (small Pdef only)");

  struct Workload {
    const char* name;
    Dfg dfg;
  };
  std::vector<Workload> cases;
  cases.push_back({"3DFT", workloads::paper_3dft()});
  cases.push_back({"w3DFT", workloads::winograd_dft3()});
  cases.push_back({"5DFT", workloads::winograd_dft5()});
  cases.push_back({"DCT8", workloads::dct8()});
  cases.push_back({"FIR16", workloads::fir_filter(16)});

  TextTable t({"workload", "Pdef", "greedy", "refined", "oracle", "swaps", "evals"});
  for (const auto& w : cases) {
    for (const std::size_t pdef : {1u, 2u}) {
      SelectOptions so;
      so.pattern_count = pdef;
      so.capacity = 5;
      RefineOptions ro;
      ro.candidate_pool = 64;
      const RefineResult refined = select_and_refine(w.dfg, so, ro);

      ExhaustiveOptions eo;
      eo.capacity = 5;
      eo.pattern_count = pdef;
      const ExhaustiveResult oracle = exhaustive_pattern_search(w.dfg, eo);

      t.add(w.name, pdef, refined.initial_cycles, refined.refined_cycles, oracle.cycles,
            refined.swaps_accepted, refined.evaluations);
    }
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nReading: greedy Eq. 8 is near-optimal on the DFT kernels but can leave\n"
              "several cycles on the table for reduction-heavy graphs at Pdef=1 (its\n"
              "antichain-coverage proxy overvalues wide mul patterns there); the\n"
              "schedule-driven swap pass recovers the exhaustive optimum in every\n"
              "measured case for a few dozen scheduler evaluations.\n");
  return 0;
}
