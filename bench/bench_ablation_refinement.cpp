// Ablation E — closing the loop on selection quality (the paper's §7
// future work): greedy selection (Eq. 8) vs schedule-driven local-search
// refinement vs the exhaustive oracle (best achievable pattern set).
//
// Every cell is pinned via bench::Gate: greedy/refined/oracle cycles and
// the swap/evaluation counts are all deterministic, so the pins are
// reproduction values — and they encode the harness's two headline
// claims as assertions: refined == oracle on every measured case, and
// refined <= greedy always.
#include <cstdio>

#include "bench_common.hpp"
#include "core/exhaustive.hpp"
#include "core/refine.hpp"
#include "core/select.hpp"
#include "util/table.hpp"
#include "workloads/dft.hpp"
#include "workloads/kernels.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

int main() {
  bench::banner("Ablation E — greedy selection vs refinement vs exhaustive oracle",
                "cycles; oracle = best over ALL covering pattern sets (small Pdef only)");

  struct Workload {
    const char* name;
    Dfg dfg;
  };
  std::vector<Workload> cases;
  cases.push_back({"3DFT", workloads::paper_3dft()});
  cases.push_back({"w3DFT", workloads::winograd_dft3()});
  cases.push_back({"5DFT", workloads::winograd_dft5()});
  cases.push_back({"DCT8", workloads::dct8()});
  cases.push_back({"FIR16", workloads::fir_filter(16)});

  // Pinned reproduction cells, row order = cases × Pdef {1, 2}:
  // {greedy, refined, oracle, swaps, evals}.
  struct Expected {
    long long greedy, refined, oracle, swaps, evals;
  };
  const Expected expected[] = {
      {8, 8, 8, 0, 10},    // 3DFT  Pdef=1
      {7, 6, 6, 1, 155},   // 3DFT  Pdef=2
      {5, 5, 5, 0, 8},     // w3DFT Pdef=1
      {5, 4, 4, 1, 73},    // w3DFT Pdef=2
      {14, 13, 13, 1, 14}, // 5DFT  Pdef=1
      {10, 10, 10, 0, 88}, // 5DFT  Pdef=2
      {16, 12, 12, 2, 15}, // DCT8  Pdef=1
      {11, 9, 9, 2, 107},  // DCT8  Pdef=2
      {16, 10, 10, 1, 11}, // FIR16 Pdef=1
      {8, 8, 8, 0, 33},    // FIR16 Pdef=2
  };

  bench::Gate gate("ablation_refinement");
  TextTable t({"workload", "Pdef", "greedy", "refined", "oracle", "swaps", "evals"});
  std::size_t row = 0;
  for (const auto& w : cases) {
    for (const std::size_t pdef : {1u, 2u}) {
      SelectOptions so;
      so.pattern_count = pdef;
      so.capacity = 5;
      RefineOptions ro;
      ro.candidate_pool = 64;
      const RefineResult refined = select_and_refine(w.dfg, so, ro);

      ExhaustiveOptions eo;
      eo.capacity = 5;
      eo.pattern_count = pdef;
      const ExhaustiveResult oracle = exhaustive_pattern_search(w.dfg, eo);

      const Expected& e = expected[row++];
      const std::string cell =
          std::string(w.name) + " Pdef=" + std::to_string(pdef) + " ";
      gate.check_eq(e.greedy, static_cast<long long>(refined.initial_cycles),
                    cell + "greedy cycles");
      gate.check_eq(e.refined, static_cast<long long>(refined.refined_cycles),
                    cell + "refined cycles");
      gate.check_eq(e.oracle, static_cast<long long>(oracle.cycles), cell + "oracle cycles");
      gate.check_eq(e.swaps, static_cast<long long>(refined.swaps_accepted),
                    cell + "accepted swaps");
      gate.check_eq(e.evals, static_cast<long long>(refined.evaluations),
                    cell + "scheduler evaluations");
      gate.check(refined.refined_cycles == oracle.cycles,
                 cell + "refinement reaches the exhaustive optimum");
      gate.check(refined.refined_cycles <= refined.initial_cycles,
                 cell + "refinement never regresses greedy");

      t.add(w.name, pdef, refined.initial_cycles, refined.refined_cycles, oracle.cycles,
            refined.swaps_accepted, refined.evaluations);
    }
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nReading: greedy Eq. 8 is near-optimal on the DFT kernels but can leave\n"
              "several cycles on the table for reduction-heavy graphs at Pdef=1 (its\n"
              "antichain-coverage proxy overvalues wide mul patterns there); the\n"
              "schedule-driven swap pass recovers the exhaustive optimum in every\n"
              "measured case for a few dozen scheduler evaluations.\n");
  return gate.finish("ablation E — greedy/refined/oracle per-cell pins");
}
