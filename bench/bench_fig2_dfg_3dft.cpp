// Regenerates paper Fig. 2 — the 3DFT data-flow graph — as Graphviz DOT
// plus a structural summary, from the reconstruction that reproduces
// Tables 1, 2 and 5 (sizes 1-2) exactly.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/dot.hpp"
#include "graph/stats.hpp"
#include "io/dfg_io.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

int main() {
  bench::banner("Fig. 2 — the 3DFT data-flow graph (reconstruction)",
                "structural summary, .dfg edge list, and Graphviz DOT");

  const Dfg dfg = workloads::paper_3dft();
  std::fputs(compute_stats(dfg).to_string(dfg).c_str(), stdout);

  // Structural pins: the reconstruction's shape (24 operations, as Table 5's
  // 24 size-1 antichains require), recorded into the BENCH_*.json trajectory
  // alongside the stdout rendering.
  bench::Gate gate("fig2_dfg_3dft");
  gate.workload("3DFT");
  gate.check_eq(24, static_cast<long long>(dfg.node_count()), "node count");
  gate.info("edge count", static_cast<std::int64_t>(dfg.edge_count()));

  std::printf("\n--- .dfg serialization (node order = paper numbering) ---\n%s",
              dfg_to_text(dfg).c_str());

  DotOptions options;
  options.show_levels = true;
  std::printf("\n--- Graphviz DOT (xlabel = asap/alap/height) ---\n%s",
              to_dot(dfg, options).c_str());
  std::printf("Render with: dot -Tpdf fig2.dot -o fig2.pdf\n");
  return gate.finish("Fig. 2 (3DFT reconstruction shape)");
}
