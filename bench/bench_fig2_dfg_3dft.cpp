// Regenerates paper Fig. 2 — the 3DFT data-flow graph — as Graphviz DOT
// plus a structural summary, from the reconstruction that reproduces
// Tables 1, 2 and 5 (sizes 1-2) exactly.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/dot.hpp"
#include "graph/stats.hpp"
#include "io/dfg_io.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

int main() {
  bench::banner("Fig. 2 — the 3DFT data-flow graph (reconstruction)",
                "structural summary, .dfg edge list, and Graphviz DOT");

  const Dfg dfg = workloads::paper_3dft();
  std::fputs(compute_stats(dfg).to_string(dfg).c_str(), stdout);

  std::printf("\n--- .dfg serialization (node order = paper numbering) ---\n%s",
              dfg_to_text(dfg).c_str());

  DotOptions options;
  options.show_levels = true;
  std::printf("\n--- Graphviz DOT (xlabel = asap/alap/height) ---\n%s",
              to_dot(dfg, options).c_str());
  std::printf("Render with: dot -Tpdf fig2.dot -o fig2.pdf\n");
  return 0;
}
