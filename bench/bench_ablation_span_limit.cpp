// Ablation C — the antichain span limit (§5.1, Theorem 1): its effect on
//   (a) enumeration work (antichain count, wall time),
//   (b) selection quality (schedule cycles with the selected patterns).
// This is the experiment behind the library default span_limit = 1; with
// that value the 3DFT column of the paper's Table 7 reproduces exactly.
//
// Every deterministic cell — the antichain count and the Pdef=1..5 cycle
// counts per (workload, limit) — is pinned via bench::Gate; enumeration
// wall time stays reported-only. The pins are reproduction values (the
// paper publishes only the 3DFT/limit-1 column, which Table 7 gates
// separately); any enumeration or selection drift fails the smoke test.
#include <cstdio>

#include "bench_common.hpp"
#include "antichain/enumerate.hpp"
#include "core/mp_schedule.hpp"
#include "core/select.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workloads/dft.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

int main() {
  bench::banner("Ablation C — span limit: enumeration cost vs selection quality",
                "cycles for Pdef=1..5 plus antichain counts, per span limit");

  struct Workload {
    const char* name;
    Dfg dfg;
  };
  std::vector<Workload> cases;
  cases.push_back({"3DFT", workloads::paper_3dft()});
  cases.push_back({"5DFT", workloads::winograd_dft5()});
  cases.push_back({"FFT8", workloads::radix2_fft(8)});

  // Pinned reproduction cells, in iteration order (limits -1..3 per
  // workload; FFT8 skips unlimited): {antichains, cycles at Pdef=1..5}.
  struct Expected {
    long long antichains, cycles[5];
  };
  const Expected expected[] = {
      // 3DFT
      {7000, {9, 8, 8, 7, 7}},        // unlimited
      {1234, {8, 8, 8, 6, 6}},        // limit 0
      {3370, {8, 7, 7, 7, 6}},        // limit 1
      {5444, {8, 7, 7, 7, 7}},        // limit 2
      {6735, {9, 8, 8, 7, 7}},        // limit 3
      // 5DFT
      {90908, {14, 11, 10, 10, 10}},  // unlimited
      {8578, {20, 20, 10, 10, 9}},    // limit 0
      {32054, {14, 10, 10, 10, 10}},  // limit 1
      {57144, {14, 11, 11, 11, 10}},  // limit 2
      {79144, {14, 11, 11, 10, 10}},  // limit 3
      // FFT8 (no unlimited row: > 50 nodes)
      {393807, {13, 13, 14, 13, 13}},   // limit 0
      {903469, {13, 13, 14, 13, 12}},   // limit 1
      {1504499, {13, 13, 14, 14, 14}},  // limit 2
      {1591187, {13, 13, 14, 14, 14}},  // limit 3
  };

  bench::Gate gate("ablation_span_limit");
  std::size_t pinned_row = 0;
  for (const auto& w : cases) {
    std::printf("\n--- %s (%zu nodes) ---\n", w.name, w.dfg.node_count());
    TextTable t({"span limit", "antichains", "enum ms", "Pdef=1", "Pdef=2", "Pdef=3",
                 "Pdef=4", "Pdef=5"});
    for (int limit = -1; limit <= 3; ++limit) {
      // Unlimited span on graphs beyond ~50 nodes enumerates billions of
      // antichains — exactly the blow-up §5.1 introduces the limit for.
      if (limit < 0 && w.dfg.node_count() > 50) continue;
      EnumerateOptions eo;
      eo.max_size = 5;
      if (limit >= 0) eo.span_limit = limit;
      Timer timer;
      const AntichainAnalysis analysis = enumerate_antichains(w.dfg, eo);
      const double enum_ms = timer.millis();

      const Expected& e = expected[pinned_row++];
      const std::string cell = std::string(w.name) + " limit " +
                               (limit < 0 ? "unlimited" : std::to_string(limit)) + " ";
      gate.check_eq(e.antichains, static_cast<long long>(analysis.total),
                    cell + "antichain count");

      std::vector<std::string> row{limit < 0 ? "unlimited" : std::to_string(limit),
                                   std::to_string(analysis.total)};
      char ms[16];
      std::snprintf(ms, sizeof ms, "%.1f", enum_ms);
      row.emplace_back(ms);
      for (std::size_t pdef = 1; pdef <= 5; ++pdef) {
        SelectOptions so;
        so.pattern_count = pdef;
        so.capacity = 5;
        so.span_limit = limit < 0 ? std::nullopt : std::optional<int>(limit);
        const SelectionResult sel = select_patterns(w.dfg, analysis, so);
        const MpScheduleResult r = multi_pattern_schedule(w.dfg, sel.patterns);
        gate.check(r.success, cell + "Pdef=" + std::to_string(pdef) + " schedules");
        gate.check_eq(e.cycles[pdef - 1], static_cast<long long>(r.success ? r.cycles : 0),
                      cell + "Pdef=" + std::to_string(pdef) + " cycles");
        row.push_back(r.success ? std::to_string(r.cycles) : "fail");
      }
      t.add_row(std::move(row));
    }
    std::fputs(t.to_string().c_str(), stdout);
  }
  std::printf("\nReading: tight limits shrink the candidate pool dramatically (Theorem 1\n"
              "justifies discarding high-span antichains) and limit 1 is the sweet spot\n"
              "on these workloads — the library default.\n");
  return gate.finish("ablation C — span-limit per-cell pins");
}
