// Ablation G — the optional compiler phases (Transformation: CSE +
// reduction rebalancing; Clustering: MAC fusion) and their effect on
// operation counts, schedule length and tile energy.
#include <cstdio>

#include "bench_common.hpp"
#include "compiler/pipeline.hpp"
#include "util/table.hpp"
#include "workloads/dft.hpp"
#include "workloads/kernels.hpp"

using namespace mpsched;

namespace {

Dfg long_dot_product(std::size_t terms) {
  // A deliberately naive (chain-form) dot product: what a frontend without
  // reassociation would emit. terms muls + a (terms-1)-link addition chain.
  Dfg g("naive-dot" + std::to_string(terms));
  const ColorId a = g.intern_color("a");
  const ColorId c = g.intern_color("c");
  std::vector<NodeId> products;
  for (std::size_t i = 0; i < terms; ++i) products.push_back(g.add_node(c));
  NodeId acc = g.add_node(a);
  g.add_edge(products[0], acc);
  g.add_edge(products[1], acc);
  for (std::size_t i = 2; i < terms; ++i) {
    const NodeId next = g.add_node(a);
    g.add_edge(acc, next);
    g.add_edge(products[i], next);
    acc = next;
  }
  return g;
}

}  // namespace

int main() {
  bench::banner("Ablation G — optional compiler phases (transform / cluster)",
                "Pdef=3, 5-ALU tile; ops = executed operations, E = energy model");

  struct Workload {
    const char* name;
    Dfg dfg;
  };
  std::vector<Workload> cases;
  cases.push_back({"naive-dot16", long_dot_product(16)});
  cases.push_back({"naive-dot32", long_dot_product(32)});
  cases.push_back({"FIR16", workloads::fir_filter(16)});
  cases.push_back({"5DFT", workloads::winograd_dft5()});
  cases.push_back({"matmul3", workloads::matmul(3)});

  TextTable t({"workload", "phases", "ops", "cycles", "reconfigs", "energy"});
  for (const auto& w : cases) {
    struct Mode {
      const char* label;
      bool transform, cluster;
    };
    for (const Mode mode : {Mode{"none", false, false}, Mode{"transform", true, false},
                            Mode{"cluster", false, true}, Mode{"both", true, true}}) {
      CompileOptions options;
      options.pattern_count = 3;
      options.run_transformations = mode.transform;
      options.run_clustering = mode.cluster;
      const CompileReport r = compile(w.dfg, options);
      if (!r.success) {
        std::printf("%s/%s failed: %s\n", w.name, mode.label, r.error.c_str());
        return 1;
      }
      t.add(w.name, mode.label, r.execution.operations, r.schedule.cycles,
            r.execution.reconfigurations, r.execution.energy);
    }
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nReading: rebalancing turns O(n) addition chains into O(log n) trees —\n"
              "the dominant win on naive frontend output; MAC fusion removes executed\n"
              "operations (energy) and can shorten schedules when the multiplier\n"
              "pressure, not the adder pressure, binds.\n");
  return 0;
}
