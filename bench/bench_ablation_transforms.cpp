// Ablation G — the optional compiler phases (Transformation: CSE +
// reduction rebalancing; Clustering: MAC fusion) and their effect on
// operation counts, schedule length and tile energy.
//
// Every cell is pinned via bench::Gate: executed operations, schedule
// cycles, reconfigurations and the (integer-valued) energy model are all
// deterministic, so the pins are reproduction values. They also encode
// the harness's headline reading as assertions: rebalancing shortens the
// naive addition chains' schedules and MAC fusion removes executed
// operations (and energy) on every MAC-bearing workload.
#include <cstdio>

#include "bench_common.hpp"
#include "compiler/pipeline.hpp"
#include "util/table.hpp"
#include "workloads/dft.hpp"
#include "workloads/kernels.hpp"

using namespace mpsched;

namespace {

Dfg long_dot_product(std::size_t terms) {
  // A deliberately naive (chain-form) dot product: what a frontend without
  // reassociation would emit. terms muls + a (terms-1)-link addition chain.
  Dfg g("naive-dot" + std::to_string(terms));
  const ColorId a = g.intern_color("a");
  const ColorId c = g.intern_color("c");
  std::vector<NodeId> products;
  for (std::size_t i = 0; i < terms; ++i) products.push_back(g.add_node(c));
  NodeId acc = g.add_node(a);
  g.add_edge(products[0], acc);
  g.add_edge(products[1], acc);
  for (std::size_t i = 2; i < terms; ++i) {
    const NodeId next = g.add_node(a);
    g.add_edge(acc, next);
    g.add_edge(products[i], next);
    acc = next;
  }
  return g;
}

}  // namespace

int main() {
  bench::banner("Ablation G — optional compiler phases (transform / cluster)",
                "Pdef=3, 5-ALU tile; ops = executed operations, E = energy model");

  struct Workload {
    const char* name;
    Dfg dfg;
  };
  std::vector<Workload> cases;
  cases.push_back({"naive-dot16", long_dot_product(16)});
  cases.push_back({"naive-dot32", long_dot_product(32)});
  cases.push_back({"FIR16", workloads::fir_filter(16)});
  cases.push_back({"5DFT", workloads::winograd_dft5()});
  cases.push_back({"matmul3", workloads::matmul(3)});

  // Pinned reproduction cells, row order = cases × modes
  // {none, transform, cluster, both}: {ops, cycles, reconfigs, energy}.
  struct Expected {
    long long ops, cycles, reconfigs;
    double energy;
  };
  const Expected expected[] = {
      {31, 16, 6, 55}, {31, 9, 7, 59}, {16, 16, 2, 24}, {23, 11, 7, 51},  // naive-dot16
      {63, 32, 6, 87}, {63, 17, 7, 91}, {32, 32, 2, 40}, {47, 19, 7, 75}, // naive-dot32
      {31, 9, 7, 59},  {31, 9, 7, 59}, {23, 11, 7, 51}, {23, 11, 7, 51},  // FIR16
      {44, 10, 10, 84}, {44, 10, 10, 84}, {40, 11, 7, 68}, {40, 11, 7, 68}, // 5DFT
      {45, 10, 7, 73}, {45, 10, 7, 73}, {27, 7, 7, 55}, {27, 7, 7, 55},   // matmul3
  };

  bench::Gate gate("ablation_transforms");
  TextTable t({"workload", "phases", "ops", "cycles", "reconfigs", "energy"});
  std::size_t row = 0;
  for (const auto& w : cases) {
    struct Mode {
      const char* label;
      bool transform, cluster;
    };
    long long none_cycles = 0, none_ops = 0;
    double none_energy = 0;
    for (const Mode mode : {Mode{"none", false, false}, Mode{"transform", true, false},
                            Mode{"cluster", false, true}, Mode{"both", true, true}}) {
      CompileOptions options;
      options.pattern_count = 3;
      options.run_transformations = mode.transform;
      options.run_clustering = mode.cluster;
      const CompileReport r = compile(w.dfg, options);
      if (!r.success) {
        std::printf("%s/%s failed: %s\n", w.name, mode.label, r.error.c_str());
        return 1;
      }
      const Expected& e = expected[row++];
      const std::string cell = std::string(w.name) + "/" + mode.label + " ";
      gate.check_eq(e.ops, static_cast<long long>(r.execution.operations), cell + "ops");
      gate.check_eq(e.cycles, static_cast<long long>(r.schedule.cycles), cell + "cycles");
      gate.check_eq(e.reconfigs, static_cast<long long>(r.execution.reconfigurations),
                    cell + "reconfigurations");
      gate.check(e.energy == r.execution.energy,
                 cell + "energy: paper=" + std::to_string(e.energy) +
                     " measured=" + std::to_string(r.execution.energy));

      if (std::string(mode.label) == "none") {
        none_cycles = static_cast<long long>(r.schedule.cycles);
        none_ops = static_cast<long long>(r.execution.operations);
        none_energy = r.execution.energy;
      } else if (std::string(mode.label) == "transform" &&
                 std::string(w.name).starts_with("naive-dot")) {
        gate.check(static_cast<long long>(r.schedule.cycles) < none_cycles,
                   cell + "rebalancing shortens the naive addition chain");
      } else if (std::string(mode.label) == "cluster") {
        gate.check(static_cast<long long>(r.execution.operations) <= none_ops,
                   cell + "MAC fusion never adds executed operations");
        gate.check(r.execution.energy <= none_energy,
                   cell + "MAC fusion never adds energy");
      }

      t.add(w.name, mode.label, r.execution.operations, r.schedule.cycles,
            r.execution.reconfigurations, r.execution.energy);
    }
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nReading: rebalancing turns O(n) addition chains into O(log n) trees —\n"
              "the dominant win on naive frontend output; MAC fusion removes executed\n"
              "operations (energy) and can shorten schedules when the multiplier\n"
              "pressure, not the adder pressure, binds.\n");
  return gate.finish("ablation G — transform/cluster per-cell pins");
}
