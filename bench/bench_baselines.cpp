// Ablation D — baseline comparison: the multi-pattern approach (selected
// patterns, Pdef = 4) against
//   * classic list scheduling with unlimited patterns (capacity C only),
//   * force-directed scheduling (Paulin-Knight) with capacity C,
//   * the exact A* optimum for the *same selected pattern set* (small
//     graphs only),
// reporting cycles and the configuration-store cost (distinct patterns) —
// the resource the Montium's 32-entry store makes scarce.
#include <cstdio>

#include "bench_common.hpp"
#include "core/mp_schedule.hpp"
#include "core/select.hpp"
#include "sched/force_directed.hpp"
#include "sched/list_schedule.hpp"
#include "sched/optimal.hpp"
#include "util/table.hpp"
#include "workloads/dft.hpp"
#include "workloads/kernels.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

int main() {
  bench::banner("Ablation D — multi-pattern vs baselines",
                "cycles / distinct patterns; baselines ignore the pattern-count limit");

  struct Workload {
    const char* name;
    Dfg dfg;
    bool run_optimal;
  };
  // run_optimal only where the exact A* proves within a small state budget
  // (wide graphs explode combinatorially — that is the point of heuristics).
  std::vector<Workload> cases;
  cases.push_back({"3DFT", workloads::paper_3dft(), true});
  cases.push_back({"w3DFT", workloads::winograd_dft3(), true});
  cases.push_back({"5DFT", workloads::winograd_dft5(), false});
  cases.push_back({"FFT8", workloads::radix2_fft(8), false});
  cases.push_back({"DCT8", workloads::dct8(), false});
  cases.push_back({"FIR16", workloads::fir_filter(16), false});
  cases.push_back({"FFT16", workloads::radix2_fft(16), false});
  cases.push_back({"matmul4", workloads::matmul(4), false});

  TextTable t({"workload", "nodes", "mp cycles", "mp patterns", "list cycles",
               "list patterns", "fds cycles", "fds patterns", "optimal(mp set)"});
  bench::Gate gate("baselines");
  for (const auto& w : cases) {
    SelectOptions so;
    so.pattern_count = 4;
    so.capacity = 5;
    // Wide graphs (FFT16, matmul4) use the analytic generator; the paper's
    // enumerative generator would take minutes there (see Ablation C).
    if (w.dfg.node_count() > 64) so.generation = PatternGeneration::LevelAnalytic;
    const SelectionResult sel = select_patterns(w.dfg, so);
    const MpScheduleResult mp = multi_pattern_schedule(w.dfg, sel.patterns);
    const ListScheduleResult list = list_schedule(w.dfg, {.capacity = 5});
    const FdsResult fds = force_directed_capacity_schedule(w.dfg, {.capacity = 5});

    std::string optimal = "-";
    if (w.run_optimal && w.dfg.node_count() <= 64) {
      OptimalOptions oo;
      oo.max_states = 200'000;
      const OptimalResult opt = optimal_schedule_length(w.dfg, sel.patterns, oo);
      optimal = opt.proven ? std::to_string(opt.cycles) : "(budget)";
    }

    t.add(w.name, w.dfg.node_count(), mp.success ? mp.cycles : 0, sel.patterns.size(),
          list.cycles, list.induced.size(), fds.success ? fds.cycles : 0,
          fds.induced.size(), optimal);

    // Trajectory cells: the comparison is deterministic, so drift in any
    // scheduler shows up in the BENCH_*.json diff even though this
    // ablation deliberately pins nothing (baselines are informational).
    gate.workload(w.name);
    gate.check(mp.success, "multi-pattern schedule succeeds");
    gate.info("mp cycles", static_cast<std::int64_t>(mp.success ? mp.cycles : 0));
    gate.info("mp patterns", static_cast<std::int64_t>(sel.patterns.size()));
    gate.info("list cycles", static_cast<std::int64_t>(list.cycles));
    gate.info("list patterns", static_cast<std::int64_t>(list.induced.size()));
    gate.info("fds cycles", static_cast<std::int64_t>(fds.success ? fds.cycles : 0));
    gate.info("fds patterns", static_cast<std::int64_t>(fds.induced.size()));
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "\nReading: unlimited-pattern baselines win a cycle or two but burn many\n"
      "configuration-store entries; the multi-pattern scheduler holds Pdef=4 entries\n"
      "while staying close to the exact optimum for its own pattern set.\n");
  return gate.finish("Ablation D — multi-pattern vs baselines (8 workloads)");
}
