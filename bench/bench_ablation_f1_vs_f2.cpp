// Ablation B — pattern priority F1 (Eq. 6, cover count) vs F2 (Eq. 7,
// priority sum) in the multi-pattern scheduler, across workloads and both
// selected and random pattern sets. The paper argues F2 resolves F1's
// ties in favour of urgent (high-priority) nodes.
#include <cstdio>

#include "bench_common.hpp"
#include "core/mp_schedule.hpp"
#include "core/select.hpp"
#include "pattern/random.hpp"
#include "util/table.hpp"
#include "workloads/dft.hpp"
#include "workloads/kernels.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

namespace {

std::size_t run(const Dfg& dfg, const PatternSet& patterns, PatternRule rule) {
  MpScheduleOptions options;
  options.rule = rule;
  const MpScheduleResult r = multi_pattern_schedule(dfg, patterns, options);
  return r.success ? r.cycles : 0;
}

}  // namespace

int main() {
  bench::banner("Ablation B — pattern priority F1 (cover count) vs F2 (priority sum)",
                "cycles per workload; 'selected' = Pdef=4 selection, 'random' = 10-draw mean");

  struct Workload {
    const char* name;
    Dfg dfg;
  };
  std::vector<Workload> cases;
  cases.push_back({"3DFT", workloads::paper_3dft()});
  cases.push_back({"5DFT", workloads::winograd_dft5()});
  cases.push_back({"FFT8", workloads::radix2_fft(8)});
  cases.push_back({"FFT16", workloads::radix2_fft(16)});
  cases.push_back({"FIR16", workloads::fir_filter(16)});
  cases.push_back({"matmul3", workloads::matmul(3)});

  TextTable t({"workload", "sel F1", "sel F2", "rnd F1 (mean)", "rnd F2 (mean)"});
  double f1_total = 0, f2_total = 0;
  for (const auto& w : cases) {
    SelectOptions so;
    so.pattern_count = 4;
    so.capacity = 5;
    // This ablation measures the scheduler's F-rule, not generation cost;
    // wide graphs use the analytic generator to keep the run fast.
    if (w.dfg.node_count() > 64) so.generation = PatternGeneration::LevelAnalytic;
    const SelectionResult sel = select_patterns(w.dfg, so);
    const std::size_t sel_f1 = run(w.dfg, sel.patterns, PatternRule::F1CoverCount);
    const std::size_t sel_f2 = run(w.dfg, sel.patterns, PatternRule::F2PrioritySum);

    Rng rng(99);
    double rnd_f1 = 0, rnd_f2 = 0;
    for (int i = 0; i < 10; ++i) {
      RandomPatternOptions rpo;
      rpo.capacity = 5;
      rpo.count = 4;
      const PatternSet random_set = random_pattern_set(w.dfg, rng, rpo);
      rnd_f1 += static_cast<double>(run(w.dfg, random_set, PatternRule::F1CoverCount));
      rnd_f2 += static_cast<double>(run(w.dfg, random_set, PatternRule::F2PrioritySum));
    }
    rnd_f1 /= 10;
    rnd_f2 /= 10;
    f1_total += static_cast<double>(sel_f1) + rnd_f1;
    f2_total += static_cast<double>(sel_f2) + rnd_f2;

    char c1[16], c2[16];
    std::snprintf(c1, sizeof c1, "%.1f", rnd_f1);
    std::snprintf(c2, sizeof c2, "%.1f", rnd_f2);
    t.add(w.name, sel_f1, sel_f2, c1, c2);
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nAggregate cycles: F1 %.1f vs F2 %.1f — %s\n", f1_total, f2_total,
              f2_total <= f1_total ? "F2 at least as good, matching the paper's argument"
                                   : "F1 ahead on this suite");
  return 0;
}
