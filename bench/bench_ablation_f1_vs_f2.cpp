// Ablation B — pattern priority F1 (Eq. 6, cover count) vs F2 (Eq. 7,
// priority sum) in the multi-pattern scheduler, across workloads and both
// selected and random pattern sets. The paper argues F2 resolves F1's
// ties in favour of urgent (high-priority) nodes.
//
// Every cell is pinned via bench::Gate. The paper fixes these knobs but
// does not publish this sweep, so the pins are reproduction values
// (captured from the deterministic implementation — selection, scheduling
// and the seeded 10-draw random sets are all bit-stable); any drift in
// selection, scheduling, or the RNG fails the smoke test. Random columns
// pin the 10-draw cycle *sum* (the printed mean is sum/10, exact under
// %.1f because cycles are integers).
#include <cstdio>

#include "bench_common.hpp"
#include "core/mp_schedule.hpp"
#include "core/select.hpp"
#include "pattern/random.hpp"
#include "util/table.hpp"
#include "workloads/dft.hpp"
#include "workloads/kernels.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

namespace {

std::size_t run(const Dfg& dfg, const PatternSet& patterns, PatternRule rule) {
  MpScheduleOptions options;
  options.rule = rule;
  const MpScheduleResult r = multi_pattern_schedule(dfg, patterns, options);
  return r.success ? r.cycles : 0;
}

}  // namespace

int main() {
  bench::banner("Ablation B — pattern priority F1 (cover count) vs F2 (priority sum)",
                "cycles per workload; 'selected' = Pdef=4 selection, 'random' = 10-draw mean");

  struct Workload {
    const char* name;
    Dfg dfg;
    // Pinned reproduction values: selected-set cycles under F1/F2, and
    // the seeded 10-draw random-set cycle sums under F1/F2.
    long long sel_f1, sel_f2, rnd_f1_sum, rnd_f2_sum;
  };
  std::vector<Workload> cases;
  cases.push_back({"3DFT", workloads::paper_3dft(), 8, 7, 75, 77});
  cases.push_back({"5DFT", workloads::winograd_dft5(), 9, 10, 114, 112});
  cases.push_back({"FFT8", workloads::radix2_fft(8), 13, 13, 157, 155});
  cases.push_back({"FFT16", workloads::radix2_fft(16), 42, 39, 466, 461});
  cases.push_back({"FIR16", workloads::fir_filter(16), 9, 10, 113, 112});
  cases.push_back({"matmul3", workloads::matmul(3), 10, 10, 132, 131});

  bench::Gate gate("ablation_f1_vs_f2");
  TextTable t({"workload", "sel F1", "sel F2", "rnd F1 (mean)", "rnd F2 (mean)"});
  double f1_total = 0, f2_total = 0;
  for (const auto& w : cases) {
    SelectOptions so;
    so.pattern_count = 4;
    so.capacity = 5;
    // This ablation measures the scheduler's F-rule, not generation cost;
    // wide graphs use the analytic generator to keep the run fast.
    if (w.dfg.node_count() > 64) so.generation = PatternGeneration::LevelAnalytic;
    const SelectionResult sel = select_patterns(w.dfg, so);
    const std::size_t sel_f1 = run(w.dfg, sel.patterns, PatternRule::F1CoverCount);
    const std::size_t sel_f2 = run(w.dfg, sel.patterns, PatternRule::F2PrioritySum);

    Rng rng(99);
    long long rnd_f1 = 0, rnd_f2 = 0;
    for (int i = 0; i < 10; ++i) {
      RandomPatternOptions rpo;
      rpo.capacity = 5;
      rpo.count = 4;
      const PatternSet random_set = random_pattern_set(w.dfg, rng, rpo);
      rnd_f1 += static_cast<long long>(run(w.dfg, random_set, PatternRule::F1CoverCount));
      rnd_f2 += static_cast<long long>(run(w.dfg, random_set, PatternRule::F2PrioritySum));
    }
    f1_total += static_cast<double>(sel_f1) + static_cast<double>(rnd_f1) / 10;
    f2_total += static_cast<double>(sel_f2) + static_cast<double>(rnd_f2) / 10;

    const std::string prefix = std::string(w.name) + " ";
    gate.check_eq(w.sel_f1, static_cast<long long>(sel_f1), prefix + "selected F1 cycles");
    gate.check_eq(w.sel_f2, static_cast<long long>(sel_f2), prefix + "selected F2 cycles");
    gate.check_eq(w.rnd_f1_sum, rnd_f1, prefix + "random F1 10-draw cycle sum");
    gate.check_eq(w.rnd_f2_sum, rnd_f2, prefix + "random F2 10-draw cycle sum");

    char c1[16], c2[16];
    std::snprintf(c1, sizeof c1, "%.1f", static_cast<double>(rnd_f1) / 10);
    std::snprintf(c2, sizeof c2, "%.1f", static_cast<double>(rnd_f2) / 10);
    t.add(w.name, sel_f1, sel_f2, c1, c2);
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nAggregate cycles: F1 %.1f vs F2 %.1f — %s\n", f1_total, f2_total,
              f2_total <= f1_total ? "F2 at least as good, matching the paper's argument"
                                   : "F1 ahead on this suite");
  gate.check(f2_total <= f1_total, "F2 aggregate <= F1 aggregate (the paper's argument)");
  return gate.finish("ablation B — F1 vs F2 per-cell pins");
}
