// Reproduces paper Table 3: multi-pattern scheduling of the 3DFT with the
// three published 4-pattern sets. The paper reports 8 / 9 / 7 cycles; the
// exact values depend on the unpublished details of the authors' graph and
// tie-breaking, so the shape to check is the ordering (set 3 best, set 2
// worst) and the magnitude (7-9 cycles).
#include <cstdio>

#include "bench_common.hpp"
#include "core/mp_schedule.hpp"
#include "pattern/parse.hpp"
#include "util/table.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

int main() {
  bench::banner("Table 3 — cycle counts for three fixed 4-pattern sets (3DFT)",
                "the experiment that motivates pattern *selection*");

  const Dfg dfg = workloads::paper_3dft();
  struct Case {
    const char* text;
    std::size_t paper_cycles;
    /// The reconstruction's own stable value — within 1 cycle of the paper
    /// (the exact counts depend on the unpublished fine structure of the
    /// authors' graph) and pinned exactly so any scheduler or graph drift
    /// fails the smoke test.
    std::size_t reproduced_cycles;
  };
  const Case cases[] = {
      {"{a,b,c,b,c} {b,b,b,a,b} {b,b,b,c,b} {b,a,b,a,a}", 8, 8},
      {"{a,b,c,b,c} {b,c,b,c,a} {c,b,a,b,a} {b,b,c,c,b}", 9, 8},
      {"{a,b,c,c,c} {a,a,b,a,c} {c,c,c,a,a} {a,b,a,b,b}", 7, 6},
  };

  bench::Gate gate("table3_pattern_sets");
  TextTable t({"patterns", "paper", "ours", "match"});
  std::vector<std::size_t> ours;
  for (const Case& c : cases) {
    const PatternSet set = parse_pattern_set(dfg, c.text);
    const MpScheduleResult r = multi_pattern_schedule(dfg, set);
    gate.check(r.success, "set " + std::to_string(ours.size() + 1) + " schedules" +
                              (r.success ? std::string() : ": " + r.error));
    if (!r.success) return gate.finish("Table 3 (scheduling failed)");
    ours.push_back(r.cycles);
    const std::string cell = "cell set" + std::to_string(ours.size());
    // Per-cell hard assertions: pinned to the reconstruction's value, and
    // never further than 1 cycle from the paper's.
    gate.check_eq(static_cast<long long>(c.reproduced_cycles),
                  static_cast<long long>(r.cycles), cell + " (pinned reproduction)");
    const long long deviation = static_cast<long long>(r.cycles) -
                                static_cast<long long>(c.paper_cycles);
    gate.check(deviation >= -1 && deviation <= 1,
               cell + " within 1 cycle of the paper (paper=" +
                   std::to_string(c.paper_cycles) + " ours=" + std::to_string(r.cycles) +
                   ")");
    t.add(set.to_string(dfg), c.paper_cycles, r.cycles,
          bench::match(static_cast<long long>(c.paper_cycles),
                       static_cast<long long>(r.cycles)));
  }
  std::fputs(t.to_string().c_str(), stdout);

  const bool shape = ours[2] <= ours[0] && ours[0] <= ours[1];
  gate.check(shape, "ordering set3 <= set1 <= set2 mirrors the paper's 7 <= 8 <= 9");
  gate.check(*std::max_element(ours.begin(), ours.end()) >
                 *std::min_element(ours.begin(), ours.end()),
             "pattern choice spreads the cycle count (paper's conclusion)");
  std::printf(
      "\nShape check (set3 <= set1 <= set2, mirroring the paper's 7 <= 8 <= 9): %s\n",
      shape ? "holds" : "VIOLATED");
  std::printf("Paper's conclusion — pattern choice strongly influences the result: spread "
              "%zu..%zu cycles\n",
              *std::min_element(ours.begin(), ours.end()),
              *std::max_element(ours.begin(), ours.end()));
  return gate.finish("Table 3 (3 cells pinned, deviation <= 1 cycle, shape holds)");
}
