// Reproduces paper Table 3: multi-pattern scheduling of the 3DFT with the
// three published 4-pattern sets. The paper reports 8 / 9 / 7 cycles; the
// exact values depend on the unpublished details of the authors' graph and
// tie-breaking, so the shape to check is the ordering (set 3 best, set 2
// worst) and the magnitude (7-9 cycles).
#include <cstdio>

#include "bench_common.hpp"
#include "core/mp_schedule.hpp"
#include "pattern/parse.hpp"
#include "util/table.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

int main() {
  bench::banner("Table 3 — cycle counts for three fixed 4-pattern sets (3DFT)",
                "the experiment that motivates pattern *selection*");

  const Dfg dfg = workloads::paper_3dft();
  struct Case {
    const char* text;
    std::size_t paper_cycles;
  };
  const Case cases[] = {
      {"{a,b,c,b,c} {b,b,b,a,b} {b,b,b,c,b} {b,a,b,a,a}", 8},
      {"{a,b,c,b,c} {b,c,b,c,a} {c,b,a,b,a} {b,b,c,c,b}", 9},
      {"{a,b,c,c,c} {a,a,b,a,c} {c,c,c,a,a} {a,b,a,b,b}", 7},
  };

  TextTable t({"patterns", "paper", "ours", "match"});
  std::vector<std::size_t> ours;
  for (const Case& c : cases) {
    const PatternSet set = parse_pattern_set(dfg, c.text);
    const MpScheduleResult r = multi_pattern_schedule(dfg, set);
    if (!r.success) {
      std::printf("FAILED: %s\n", r.error.c_str());
      return 1;
    }
    ours.push_back(r.cycles);
    t.add(set.to_string(dfg), c.paper_cycles, r.cycles,
          bench::match(static_cast<long long>(c.paper_cycles),
                       static_cast<long long>(r.cycles)));
  }
  std::fputs(t.to_string().c_str(), stdout);

  const bool shape = ours[2] <= ours[0] && ours[0] <= ours[1];
  std::printf(
      "\nShape check (set3 <= set1 <= set2, mirroring the paper's 7 <= 8 <= 9): %s\n",
      shape ? "holds" : "VIOLATED");
  std::printf("Paper's conclusion — pattern choice strongly influences the result: spread "
              "%zu..%zu cycles\n",
              *std::min_element(ours.begin(), ours.end()),
              *std::max_element(ours.begin(), ours.end()));
  return shape ? 0 : 1;
}
