// Reproduces paper Table 5: the number of 3DFT antichains satisfying each
// span limit, per antichain size 1..5.
//
// Sizes 1 and 2 are fully determined by Table 1 + the reconstruction's
// comparability structure and match exactly. Sizes 3-5 depend on
// unpublished fine structure of the authors' graph; the reconstruction
// lands within ~3% with the identical monotone shape.
#include <cstdio>

#include "bench_common.hpp"
#include "antichain/enumerate.hpp"
#include "util/table.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

int main() {
  bench::banner("Table 5 — antichains satisfying the span limitation (3DFT)",
                "rows: span limit 4..0; columns: antichain size 1..5");

  const std::uint64_t paper[5][5] = {
      // size:  1    2     3     4     5        span limit
      {24, 224, 1034, 2500, 3104},  // 4
      {24, 222, 1010, 2404, 2954},  // 3
      {24, 208, 870, 1926, 2282},   // 2
      {24, 178, 632, 1232, 1364},   // 1
      {24, 124, 304, 425, 356},     // 0
  };

  const Dfg dfg = workloads::paper_3dft();
  EnumerateOptions options;
  options.max_size = 5;
  const AntichainAnalysis analysis = enumerate_antichains(dfg, options);

  TextTable t({"span limit", "size 1", "size 2", "size 3", "size 4", "size 5"});
  bench::Gate gate("table5_antichain_counts");
  int exact_cells = 0;
  for (int limit = 4; limit >= 0; --limit) {
    std::vector<std::string> row{"<= " + std::to_string(limit)};
    for (std::size_t size = 1; size <= 5; ++size) {
      const std::uint64_t measured = analysis.count_with_span_at_most(size, limit);
      const std::uint64_t expected = paper[4 - limit][size - 1];
      if (measured == expected) ++exact_cells;
      const std::string cell = "size " + std::to_string(size) + " span<=" +
                               std::to_string(limit);
      if (size <= 2) {
        // Sizes 1-2 are fully pinned by Tables 1-2: exact or regression.
        gate.check_eq(static_cast<long long>(expected), static_cast<long long>(measured),
                      "pinned cell " + cell);
      } else {
        // Sizes 3-5 depend on unpublished fine structure; the
        // reconstruction historically lands within ~3.6%. Gate at 4% so
        // any drift in the enumerator or the graph fails the smoke test.
        // expected == 0 with any measured count is a full miss, not 0%.
        const double rel = expected == 0
                               ? (measured == 0 ? 0.0 : 1.0)
                               : std::abs(static_cast<double>(measured) -
                                          static_cast<double>(expected)) /
                                     static_cast<double>(expected);
        gate.check(rel <= 0.04, "unpinned cell " + cell + " deviates " +
                                     std::to_string(rel * 100) + "% (> 4%)");
      }
      row.push_back(std::to_string(expected) + "/" + std::to_string(measured));
    }
    t.add_row(std::move(row));
  }
  std::printf("cells are paper/ours\n\n%s", t.to_string().c_str());

  std::printf("\nExact cells: %d/25 (sizes 1-2 are fully pinned by Tables 1-2: %s)\n",
              exact_cells,
              exact_cells >= 10 ? "all 10 exact" : "MISMATCH in pinned columns");

  // Max relative deviation in the unpinned columns.
  double worst = 0;
  for (int limit = 4; limit >= 0; --limit) {
    for (std::size_t size = 3; size <= 5; ++size) {
      const double expected = static_cast<double>(paper[4 - limit][size - 1]);
      const double measured =
          static_cast<double>(analysis.count_with_span_at_most(size, limit));
      const double rel = expected == 0 ? 0 : std::abs(measured - expected) / expected;
      worst = std::max(worst, rel);
    }
  }
  std::printf("Worst relative deviation in sizes 3-5: %.1f%%\n", worst * 100);
  return gate.finish("Table 5 (10 pinned cells exact, 15 unpinned within 4%)");
}
