// Ablation F — tie-breaking sensitivity of the multi-pattern scheduler.
// Equation 4 leaves genuine ties (equal-height sinks, symmetric halves of
// butterfly graphs); this quantifies how much the tie-break policy moves
// the result, and why the paper's own Table 2 required the FIFO order.
#include <cstdio>

#include "bench_common.hpp"
#include "core/mp_schedule.hpp"
#include "core/select.hpp"
#include "util/table.hpp"
#include "workloads/dft.hpp"
#include "workloads/kernels.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

int main() {
  bench::banner("Ablation F — node tie-break policy (stable/asc/desc/random)",
                "cycles with Pdef=4 selected patterns; random = min..max over 20 seeds");

  struct Workload {
    const char* name;
    Dfg dfg;
  };
  std::vector<Workload> cases;
  cases.push_back({"3DFT", workloads::paper_3dft()});
  cases.push_back({"5DFT", workloads::winograd_dft5()});
  cases.push_back({"FFT8", workloads::radix2_fft(8)});
  cases.push_back({"DCT8", workloads::dct8()});
  cases.push_back({"matmul3", workloads::matmul(3)});

  TextTable t({"workload", "stable (paper)", "id asc", "id desc", "random min..max"});
  for (const auto& w : cases) {
    SelectOptions so;
    so.pattern_count = 4;
    so.capacity = 5;
    const SelectionResult sel = select_patterns(w.dfg, so);

    auto run = [&](TieBreak tb, std::uint64_t seed) {
      MpScheduleOptions o;
      o.tie_break = tb;
      o.seed = seed;
      const MpScheduleResult r = multi_pattern_schedule(w.dfg, sel.patterns, o);
      return r.success ? r.cycles : 0;
    };

    std::size_t rnd_min = SIZE_MAX, rnd_max = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const std::size_t c = run(TieBreak::Random, seed);
      rnd_min = std::min(rnd_min, c);
      rnd_max = std::max(rnd_max, c);
    }
    t.add(w.name, run(TieBreak::Stable, 0), run(TieBreak::NodeIdAsc, 0),
          run(TieBreak::NodeIdDesc, 0),
          std::to_string(rnd_min) + ".." + std::to_string(rnd_max));
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nReading: the policy shifts results by at most a cycle or two — the\n"
              "heuristic is robust — but exact trace reproduction (Table 2) needs the\n"
              "paper's FIFO (stable) order.\n");
  return 0;
}
