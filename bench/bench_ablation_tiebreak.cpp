// Ablation F — tie-breaking sensitivity of the multi-pattern scheduler.
// Equation 4 leaves genuine ties (equal-height sinks, symmetric halves of
// butterfly graphs); this quantifies how much the tie-break policy moves
// the result, and why the paper's own Table 2 required the FIFO order.
//
// Every cell is pinned via bench::Gate — stable/asc/desc cycles exactly,
// and the seeded 20-draw random policy's min..max envelope. The pins are
// reproduction values; on these workloads they also encode the harness's
// reading as an assertion: every policy (and every random seed) lands on
// the same cycle count, i.e. the heuristic is tie-break-robust here.
#include <cstdio>

#include "bench_common.hpp"
#include "core/mp_schedule.hpp"
#include "core/select.hpp"
#include "util/table.hpp"
#include "workloads/dft.hpp"
#include "workloads/kernels.hpp"
#include "workloads/paper_graphs.hpp"

using namespace mpsched;

int main() {
  bench::banner("Ablation F — node tie-break policy (stable/asc/desc/random)",
                "cycles with Pdef=4 selected patterns; random = min..max over 20 seeds");

  struct Workload {
    const char* name;
    Dfg dfg;
    long long cycles;  ///< pinned: every policy and every seed lands here
  };
  std::vector<Workload> cases;
  cases.push_back({"3DFT", workloads::paper_3dft(), 7});
  cases.push_back({"5DFT", workloads::winograd_dft5(), 10});
  cases.push_back({"FFT8", workloads::radix2_fft(8), 13});
  cases.push_back({"DCT8", workloads::dct8(), 9});
  cases.push_back({"matmul3", workloads::matmul(3), 10});

  bench::Gate gate("ablation_tiebreak");
  TextTable t({"workload", "stable (paper)", "id asc", "id desc", "random min..max"});
  for (const auto& w : cases) {
    SelectOptions so;
    so.pattern_count = 4;
    so.capacity = 5;
    const SelectionResult sel = select_patterns(w.dfg, so);

    auto run = [&](TieBreak tb, std::uint64_t seed) {
      MpScheduleOptions o;
      o.tie_break = tb;
      o.seed = seed;
      const MpScheduleResult r = multi_pattern_schedule(w.dfg, sel.patterns, o);
      return r.success ? r.cycles : 0;
    };

    const std::size_t stable = run(TieBreak::Stable, 0);
    const std::size_t asc = run(TieBreak::NodeIdAsc, 0);
    const std::size_t desc = run(TieBreak::NodeIdDesc, 0);
    std::size_t rnd_min = SIZE_MAX, rnd_max = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const std::size_t c = run(TieBreak::Random, seed);
      rnd_min = std::min(rnd_min, c);
      rnd_max = std::max(rnd_max, c);
    }

    const std::string prefix = std::string(w.name) + " ";
    gate.check_eq(w.cycles, static_cast<long long>(stable), prefix + "stable cycles");
    gate.check_eq(w.cycles, static_cast<long long>(asc), prefix + "id-asc cycles");
    gate.check_eq(w.cycles, static_cast<long long>(desc), prefix + "id-desc cycles");
    gate.check_eq(w.cycles, static_cast<long long>(rnd_min),
                  prefix + "random 20-seed min cycles");
    gate.check_eq(w.cycles, static_cast<long long>(rnd_max),
                  prefix + "random 20-seed max cycles");

    t.add(w.name, stable, asc, desc,
          std::to_string(rnd_min) + ".." + std::to_string(rnd_max));
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nReading: the policy shifts results by at most a cycle or two — the\n"
              "heuristic is robust — but exact trace reproduction (Table 2) needs the\n"
              "paper's FIFO (stable) order.\n");
  return gate.finish("ablation F — tie-break per-cell pins");
}
