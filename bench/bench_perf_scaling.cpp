// Performance scaling (google-benchmark): the computational kernels —
// antichain enumeration (sequential vs shared-pool parallel), transitive
// closure, pattern selection end-to-end, and the multi-pattern scheduler —
// across graph sizes.
//
// main() additionally pins the arena-enumerator speedup: the word-parallel
// scratch-arena walk must beat the reference (copy-a-bitset-per-node)
// enumerator by ≥2× on the Fig. 5 span workload, single shard, with
// byte-identical analysis output — and writes the BENCH_perf_scaling.json
// trajectory cell for it.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "antichain/analytic.hpp"
#include "antichain/enumerate.hpp"
#include "core/mp_schedule.hpp"
#include "core/select.hpp"
#include "graph/closure.hpp"
#include "pattern/random.hpp"
#include "util/timer.hpp"
#include "workloads/dft.hpp"
#include "workloads/paper_graphs.hpp"
#include "workloads/random_dag.hpp"

namespace {

using namespace mpsched;

Dfg sized_dag(std::int64_t nodes_hint) {
  workloads::LayeredDagOptions options;
  options.layers = static_cast<std::size_t>(std::max<std::int64_t>(3, nodes_hint / 8));
  options.min_width = 6;
  options.max_width = 10;
  options.edge_probability = 0.3;
  return workloads::random_layered_dag(12345, options);
}

void BM_TransitiveClosure(benchmark::State& state) {
  const Dfg g = sized_dag(state.range(0));
  for (auto _ : state) {
    Reachability reach(g);
    benchmark::DoNotOptimize(reach.comparable_pair_count());
  }
  state.SetLabel(std::to_string(g.node_count()) + " nodes");
}
BENCHMARK(BM_TransitiveClosure)->Arg(64)->Arg(128)->Arg(256);

void BM_AntichainEnumeration(benchmark::State& state) {
  const Dfg g = sized_dag(state.range(0));
  const Levels lv = compute_levels(g);
  const Reachability reach(g);
  EnumerateOptions options;
  options.max_size = 5;
  options.span_limit = 1;  // library default
  options.parallel = state.range(1) != 0;
  std::uint64_t total = 0;
  for (auto _ : state) {
    const AntichainAnalysis analysis = enumerate_antichains(g, lv, reach, options);
    total = analysis.total;
    benchmark::DoNotOptimize(analysis.per_pattern.size());
  }
  state.SetLabel(std::to_string(g.node_count()) + " nodes, " + std::to_string(total) +
                 " antichains, " + (options.parallel ? "parallel" : "serial"));
  state.SetItemsProcessed(static_cast<std::int64_t>(total) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AntichainEnumeration)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Unit(benchmark::kMillisecond);

void BM_PatternSelection(benchmark::State& state) {
  const Dfg g = sized_dag(state.range(0));
  SelectOptions options;
  options.pattern_count = 4;
  options.capacity = 5;
  for (auto _ : state) {
    const SelectionResult sel = select_patterns(g, options);
    benchmark::DoNotOptimize(sel.patterns.size());
  }
  state.SetLabel(std::to_string(g.node_count()) + " nodes");
  state.SetComplexityN(static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_PatternSelection)->Arg(48)->Arg(96)->Arg(192)->Unit(benchmark::kMillisecond);

void BM_MultiPatternSchedule(benchmark::State& state) {
  const Dfg g = sized_dag(state.range(0));
  SelectOptions so;
  so.pattern_count = 4;
  so.capacity = 5;
  const SelectionResult sel = select_patterns(g, so);
  for (auto _ : state) {
    const MpScheduleResult r = multi_pattern_schedule(g, sel.patterns);
    benchmark::DoNotOptimize(r.cycles);
  }
  state.SetLabel(std::to_string(g.node_count()) + " nodes");
}
BENCHMARK(BM_MultiPatternSchedule)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_AnalyticGeneration(benchmark::State& state) {
  const Dfg g = workloads::radix2_fft(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const AntichainAnalysis analysis = analytic_level_analysis(g, 5);
    benchmark::DoNotOptimize(analysis.per_pattern.size());
  }
  state.SetLabel("fft" + std::to_string(state.range(0)) + ": " +
                 std::to_string(g.node_count()) + " nodes");
}
BENCHMARK(BM_AnalyticGeneration)->Arg(16)->Arg(64)->Arg(256);

void BM_ScheduleFft(benchmark::State& state) {
  const Dfg g = workloads::radix2_fft(static_cast<std::size_t>(state.range(0)));
  SelectOptions so;
  so.pattern_count = 4;
  so.capacity = 5;
  // Enumerative generation is intractable on wide FFTs; scheduler scaling
  // is what this benchmark measures, so use the analytic generator.
  so.generation = PatternGeneration::LevelAnalytic;
  const SelectionResult sel = select_patterns(g, so);
  for (auto _ : state) {
    const MpScheduleResult r = multi_pattern_schedule(g, sel.patterns);
    benchmark::DoNotOptimize(r.cycles);
  }
  state.SetLabel("fft" + std::to_string(state.range(0)) + ": " +
                 std::to_string(g.node_count()) + " nodes");
}
BENCHMARK(BM_ScheduleFft)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

/// True when the two analyses are field-by-field identical (the same
/// contract test_util's expect_analysis_identical asserts in gtest).
bool analyses_identical(const AntichainAnalysis& a, const AntichainAnalysis& b) {
  if (a.total != b.total || a.count_by_size_span != b.count_by_size_span ||
      a.per_pattern.size() != b.per_pattern.size())
    return false;
  for (std::size_t i = 0; i < a.per_pattern.size(); ++i) {
    const PatternAntichains& x = a.per_pattern[i];
    const PatternAntichains& y = b.per_pattern[i];
    if (!(x.pattern == y.pattern) || x.antichain_count != y.antichain_count ||
        x.node_frequency != y.node_frequency || x.members != y.members)
      return false;
  }
  return true;
}

/// Best-of-reps wall time of `fn`, with enough inner iterations per rep to
/// dominate clock noise. Minimum (not mean) so co-scheduled load only ever
/// inflates, never deflates, a measurement.
template <typename Fn>
double best_seconds(Fn&& fn, int iterations, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    mpsched::Timer timer;
    for (int i = 0; i < iterations; ++i) fn();
    best = std::min(best, timer.seconds() / iterations);
  }
  return best;
}

/// The pinned arena-vs-reference enumeration gate on the Fig. 5 span
/// workload (3DFT, max_size 4 — the population Theorem 1 is checked over),
/// single shard (parallel off), exercised through both public entry points.
int run_enumeration_speedup_gate() {
  bench::Gate gate("perf_scaling");
  gate.workload("fig5-span-3dft");

  const Dfg g = workloads::paper_3dft();
  const Levels lv = compute_levels(g);
  const Reachability reach(g);
  EnumerateOptions options;
  options.max_size = 4;
  options.parallel = false;

  // Byte-identity first: the representation change must be invisible in
  // the analysis (member lists included).
  {
    EnumerateOptions with_members = options;
    with_members.collect_members = true;
    const AntichainAnalysis ref = enumerate_antichains_reference(g, lv, reach, with_members);
    const AntichainAnalysis arena = enumerate_antichains(g, lv, reach, with_members);
    gate.check(analyses_identical(ref, arena),
               "arena enumerator byte-identical to reference (collect_members)");
    gate.check_eq(3808, static_cast<long long>(arena.total),
                  "fig5 span workload antichain population");
  }

  // Calibrate the inner iteration count off the reference walk so one rep
  // lasts ~50ms on any build type (Release and ASan/Debug legs both time
  // meaningfully), then take best-of-5 for both kernels.
  mpsched::Timer calibrate;
  (void)enumerate_antichains_reference(g, lv, reach, options);
  const double once = std::max(calibrate.seconds(), 1e-6);
  const int iterations = std::clamp(static_cast<int>(0.05 / once), 1, 200);

  const double ref_s = best_seconds(
      [&] { benchmark::DoNotOptimize(enumerate_antichains_reference(g, lv, reach, options)); },
      iterations, 5);
  const double arena_s = best_seconds(
      [&] { benchmark::DoNotOptimize(enumerate_antichains(g, lv, reach, options)); },
      iterations, 5);
  const double speedup = ref_s / arena_s;

  std::printf("\nFig. 5 span workload, single shard: reference %.3f ms, arena %.3f ms, "
              "speedup %.2fx\n",
              ref_s * 1e3, arena_s * 1e3, speedup);
  gate.info("reference enumerate ms", ref_s * 1e3);
  gate.info("arena enumerate ms", arena_s * 1e3);
  gate.check_min(2.0, speedup, "single-shard enumeration speedup (arena vs reference)");

  return gate.finish("perf scaling (arena enumerator identity + pinned >=2x speedup)");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_enumeration_speedup_gate();
}
