// Performance scaling (google-benchmark): the computational kernels —
// antichain enumeration (sequential vs shared-pool parallel), transitive
// closure, pattern selection end-to-end, and the multi-pattern scheduler —
// across graph sizes.
#include <benchmark/benchmark.h>

#include "antichain/analytic.hpp"
#include "antichain/enumerate.hpp"
#include "core/mp_schedule.hpp"
#include "core/select.hpp"
#include "graph/closure.hpp"
#include "pattern/random.hpp"
#include "workloads/dft.hpp"
#include "workloads/random_dag.hpp"

namespace {

using namespace mpsched;

Dfg sized_dag(std::int64_t nodes_hint) {
  workloads::LayeredDagOptions options;
  options.layers = static_cast<std::size_t>(std::max<std::int64_t>(3, nodes_hint / 8));
  options.min_width = 6;
  options.max_width = 10;
  options.edge_probability = 0.3;
  return workloads::random_layered_dag(12345, options);
}

void BM_TransitiveClosure(benchmark::State& state) {
  const Dfg g = sized_dag(state.range(0));
  for (auto _ : state) {
    Reachability reach(g);
    benchmark::DoNotOptimize(reach.comparable_pair_count());
  }
  state.SetLabel(std::to_string(g.node_count()) + " nodes");
}
BENCHMARK(BM_TransitiveClosure)->Arg(64)->Arg(128)->Arg(256);

void BM_AntichainEnumeration(benchmark::State& state) {
  const Dfg g = sized_dag(state.range(0));
  const Levels lv = compute_levels(g);
  const Reachability reach(g);
  EnumerateOptions options;
  options.max_size = 5;
  options.span_limit = 1;  // library default
  options.parallel = state.range(1) != 0;
  std::uint64_t total = 0;
  for (auto _ : state) {
    const AntichainAnalysis analysis = enumerate_antichains(g, lv, reach, options);
    total = analysis.total;
    benchmark::DoNotOptimize(analysis.per_pattern.size());
  }
  state.SetLabel(std::to_string(g.node_count()) + " nodes, " + std::to_string(total) +
                 " antichains, " + (options.parallel ? "parallel" : "serial"));
  state.SetItemsProcessed(static_cast<std::int64_t>(total) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AntichainEnumeration)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Unit(benchmark::kMillisecond);

void BM_PatternSelection(benchmark::State& state) {
  const Dfg g = sized_dag(state.range(0));
  SelectOptions options;
  options.pattern_count = 4;
  options.capacity = 5;
  for (auto _ : state) {
    const SelectionResult sel = select_patterns(g, options);
    benchmark::DoNotOptimize(sel.patterns.size());
  }
  state.SetLabel(std::to_string(g.node_count()) + " nodes");
  state.SetComplexityN(static_cast<std::int64_t>(g.node_count()));
}
BENCHMARK(BM_PatternSelection)->Arg(48)->Arg(96)->Arg(192)->Unit(benchmark::kMillisecond);

void BM_MultiPatternSchedule(benchmark::State& state) {
  const Dfg g = sized_dag(state.range(0));
  SelectOptions so;
  so.pattern_count = 4;
  so.capacity = 5;
  const SelectionResult sel = select_patterns(g, so);
  for (auto _ : state) {
    const MpScheduleResult r = multi_pattern_schedule(g, sel.patterns);
    benchmark::DoNotOptimize(r.cycles);
  }
  state.SetLabel(std::to_string(g.node_count()) + " nodes");
}
BENCHMARK(BM_MultiPatternSchedule)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_AnalyticGeneration(benchmark::State& state) {
  const Dfg g = workloads::radix2_fft(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const AntichainAnalysis analysis = analytic_level_analysis(g, 5);
    benchmark::DoNotOptimize(analysis.per_pattern.size());
  }
  state.SetLabel("fft" + std::to_string(state.range(0)) + ": " +
                 std::to_string(g.node_count()) + " nodes");
}
BENCHMARK(BM_AnalyticGeneration)->Arg(16)->Arg(64)->Arg(256);

void BM_ScheduleFft(benchmark::State& state) {
  const Dfg g = workloads::radix2_fft(static_cast<std::size_t>(state.range(0)));
  SelectOptions so;
  so.pattern_count = 4;
  so.capacity = 5;
  // Enumerative generation is intractable on wide FFTs; scheduler scaling
  // is what this benchmark measures, so use the analytic generator.
  so.generation = PatternGeneration::LevelAnalytic;
  const SelectionResult sel = select_patterns(g, so);
  for (auto _ : state) {
    const MpScheduleResult r = multi_pattern_schedule(g, sel.patterns);
    benchmark::DoNotOptimize(r.cycles);
  }
  state.SetLabel("fft" + std::to_string(state.range(0)) + ": " +
                 std::to_string(g.node_count()) + " nodes");
}
BENCHMARK(BM_ScheduleFft)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
