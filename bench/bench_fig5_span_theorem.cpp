// Empirically validates Theorem 1 (the Fig. 5 argument): scheduling an
// antichain A into one clock cycle forces at least
// ASAPmax + Span(A) + 1 total cycles. We pin every enumerated antichain of
// the 3DFT and of random DAGs into one cycle, greedily complete the
// schedule, and confirm the bound — plus measure its tightness.
//
// Every row is a bench::Gate hard assertion: zero violations (the theorem
// itself), and the per-span antichain and bound-tight counts pinned to
// their stable reproduced values — enumeration and the greedy completion
// are deterministic, so any drift in either trips the gate.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "antichain/enumerate.hpp"
#include "antichain/span.hpp"
#include "graph/levels.hpp"
#include "util/table.hpp"
#include "workloads/paper_graphs.hpp"
#include "workloads/random_dag.hpp"

using namespace mpsched;

namespace {

int pinned_schedule_length(const Dfg& g, const std::vector<NodeId>& antichain) {
  const Levels lv = compute_levels(g);
  int pin_cycle = 0;
  for (const NodeId n : antichain) pin_cycle = std::max(pin_cycle, lv.asap[n]);
  std::vector<int> cycle(g.node_count(), -1);
  for (const NodeId n : antichain) cycle[n] = pin_cycle;
  int last = pin_cycle;
  for (const NodeId v : g.topo_order()) {
    if (cycle[v] == -1) {
      int c = 0;
      for (const NodeId p : g.preds(v)) c = std::max(c, cycle[p] + 1);
      cycle[v] = c;
    }
    last = std::max(last, cycle[v]);
  }
  return last + 1;
}

struct SpanRow {
  std::uint64_t antichains = 0;
  std::uint64_t bound_tight = 0;  // pinned length == bound
  std::uint64_t violations = 0;   // pinned length < bound (must stay 0)
};

/// Reproduction-pinned row: per (graph, span) antichain count, with the
/// greedy completion observed to meet the bound exactly every time.
struct ExpectedRow {
  const char* graph;
  int span;
  std::uint64_t antichains;
};

void run_graph(const char* label, const Dfg& g, TextTable& t, bench::Gate& gate,
               const ExpectedRow* expected, std::size_t expected_rows) {
  const Levels lv = compute_levels(g);
  EnumerateOptions options;
  options.max_size = 4;
  options.collect_members = true;
  const AntichainAnalysis analysis = enumerate_antichains(g, options);

  std::vector<SpanRow> by_span(static_cast<std::size_t>(lv.asap_max) + 1);
  for (const auto& pa : analysis.per_pattern) {
    for (const auto& antichain : pa.members) {
      const int span = span_of(antichain, lv);
      const int bound = lv.asap_max + span + 1;
      const int actual = pinned_schedule_length(g, antichain);
      auto& row = by_span[static_cast<std::size_t>(span)];
      ++row.antichains;
      if (actual == bound) ++row.bound_tight;
      if (actual < bound) ++row.violations;
    }
  }
  std::size_t rows_emitted = 0;
  for (std::size_t span = 0; span < by_span.size(); ++span) {
    if (by_span[span].antichains == 0) continue;
    const SpanRow& row = by_span[span];
    const std::string where =
        std::string("[") + label + " span=" + std::to_string(span) + "]";
    // Theorem 1 itself.
    gate.check_eq(0, static_cast<long long>(row.violations), "violations " + where);
    // Reproduction pins: the enumerated population and its tightness.
    if (rows_emitted < expected_rows) {
      const ExpectedRow& e = expected[rows_emitted];
      gate.check(std::string(e.graph) == label && e.span == static_cast<int>(span),
                 "row order " + where);
      gate.check_eq(static_cast<long long>(e.antichains),
                    static_cast<long long>(row.antichains), "antichains " + where);
    }
    gate.check_eq(static_cast<long long>(row.antichains),
                  static_cast<long long>(row.bound_tight),
                  "greedy completion meets the bound exactly " + where);
    ++rows_emitted;
    t.add(label, span, row.antichains, lv.asap_max + static_cast<int>(span) + 1,
          row.bound_tight, row.violations);
  }
  gate.check_eq(static_cast<long long>(expected_rows),
                static_cast<long long>(rows_emitted),
                std::string("populated span rows for ") + label);
}

}  // namespace

int main() {
  bench::banner("Fig. 5 / Theorem 1 — span lower bound, checked empirically",
                "pin each antichain into one cycle, greedily complete, compare to bound");

  // Reproduction-pinned populations (size <= 4 antichains per span).
  const ExpectedRow expected_3dft[] = {
      {"3DFT", 0, 877}, {"3DFT", 1, 1178}, {"3DFT", 2, 1026},
      {"3DFT", 3, 613}, {"3DFT", 4, 114},
  };
  const ExpectedRow expected_rand11[] = {
      {"rand-11", 0, 130}, {"rand-11", 1, 133}, {"rand-11", 2, 90}, {"rand-11", 3, 28},
  };
  const ExpectedRow expected_rand12[] = {
      {"rand-12", 0, 47}, {"rand-12", 1, 35}, {"rand-12", 2, 21},
  };

  TextTable t({"graph", "span", "antichains", "Thm-1 bound", "bound tight", "violations"});
  bench::Gate gate("fig5_span_theorem");
  run_graph("3DFT", workloads::paper_3dft(), t, gate, expected_3dft,
            std::size(expected_3dft));
  workloads::LayeredDagOptions dag_options;
  dag_options.layers = 4;
  dag_options.min_width = 2;
  dag_options.max_width = 5;
  run_graph("rand-11", workloads::random_layered_dag(11, dag_options), t, gate,
            expected_rand11, std::size(expected_rand11));
  run_graph("rand-12", workloads::random_layered_dag(12, dag_options), t, gate,
            expected_rand12, std::size(expected_rand12));
  std::fputs(t.to_string().c_str(), stdout);

  std::printf("\nTheorem 1 holds iff the violations column is all zero.\n");
  return gate.finish("Fig. 5 / Theorem 1 (12 span rows x {violations, population, tightness})");
}
