// Empirically validates Theorem 1 (the Fig. 5 argument): scheduling an
// antichain A into one clock cycle forces at least
// ASAPmax + Span(A) + 1 total cycles. We pin every enumerated antichain of
// the 3DFT and of random DAGs into one cycle, greedily complete the
// schedule, and confirm the bound — plus measure its tightness.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "antichain/enumerate.hpp"
#include "antichain/span.hpp"
#include "graph/levels.hpp"
#include "util/table.hpp"
#include "workloads/paper_graphs.hpp"
#include "workloads/random_dag.hpp"

using namespace mpsched;

namespace {

int pinned_schedule_length(const Dfg& g, const std::vector<NodeId>& antichain) {
  const Levels lv = compute_levels(g);
  int pin_cycle = 0;
  for (const NodeId n : antichain) pin_cycle = std::max(pin_cycle, lv.asap[n]);
  std::vector<int> cycle(g.node_count(), -1);
  for (const NodeId n : antichain) cycle[n] = pin_cycle;
  int last = pin_cycle;
  for (const NodeId v : g.topo_order()) {
    if (cycle[v] == -1) {
      int c = 0;
      for (const NodeId p : g.preds(v)) c = std::max(c, cycle[p] + 1);
      cycle[v] = c;
    }
    last = std::max(last, cycle[v]);
  }
  return last + 1;
}

struct SpanRow {
  std::uint64_t antichains = 0;
  std::uint64_t bound_tight = 0;  // pinned length == bound
  std::uint64_t violations = 0;   // pinned length < bound (must stay 0)
};

void run_graph(const char* label, const Dfg& g, TextTable& t) {
  const Levels lv = compute_levels(g);
  EnumerateOptions options;
  options.max_size = 4;
  options.collect_members = true;
  const AntichainAnalysis analysis = enumerate_antichains(g, options);

  std::vector<SpanRow> by_span(static_cast<std::size_t>(lv.asap_max) + 1);
  for (const auto& pa : analysis.per_pattern) {
    for (const auto& antichain : pa.members) {
      const int span = span_of(antichain, lv);
      const int bound = lv.asap_max + span + 1;
      const int actual = pinned_schedule_length(g, antichain);
      auto& row = by_span[static_cast<std::size_t>(span)];
      ++row.antichains;
      if (actual == bound) ++row.bound_tight;
      if (actual < bound) ++row.violations;
    }
  }
  for (std::size_t span = 0; span < by_span.size(); ++span) {
    if (by_span[span].antichains == 0) continue;
    t.add(label, span, by_span[span].antichains,
          lv.asap_max + static_cast<int>(span) + 1, by_span[span].bound_tight,
          by_span[span].violations);
  }
}

}  // namespace

int main() {
  bench::banner("Fig. 5 / Theorem 1 — span lower bound, checked empirically",
                "pin each antichain into one cycle, greedily complete, compare to bound");

  TextTable t({"graph", "span", "antichains", "Thm-1 bound", "bound tight", "violations"});
  run_graph("3DFT", workloads::paper_3dft(), t);
  for (const std::uint64_t seed : {11ULL, 12ULL}) {
    workloads::LayeredDagOptions dag_options;
    dag_options.layers = 4;
    dag_options.min_width = 2;
    dag_options.max_width = 5;
    run_graph(("rand-" + std::to_string(seed)).c_str(),
              workloads::random_layered_dag(seed, dag_options), t);
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nTheorem 1 holds iff the violations column is all zero.\n");
  return 0;
}
